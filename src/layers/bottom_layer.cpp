#include "layers/bottom_layer.h"

#include "filter/interp.h"

namespace pa {

void BottomLayer::init(LayerInit& ctx) {
  LayoutRegistry& reg = ctx.layout;
  for (std::size_t i = 0; i < 4; ++i) {
    f_src_[i] = reg.add_field(FieldClass::kConnId, "src_addr", 64);
    f_dst_[i] = reg.add_field(FieldClass::kConnId, "dst_addr", 64);
  }
  f_group_ = reg.add_field(FieldClass::kConnId, "group", 64);
  f_version_ = reg.add_field(FieldClass::kConnId, "version", 32);

  f_len_ = reg.add_field(FieldClass::kMsgSpec, "length", 16);
  f_cksum_ = reg.add_field(FieldClass::kMsgSpec, "checksum", 32);

  // Send filter: fill in the message-specific fields (POP_FIELD stores —
  // the unusual send-side filter of §3.3). Length first so the digest (which
  // masks out msg-spec bits) is order-independent.
  const bool wide = cfg_.checksum_covers_headers;
  ctx.send_filter.push_size().pop_field(f_len_);
  ctx.send_filter.digest(cfg_.digest, wide).pop_field(f_cksum_);

  // Receive filter: verify them; 0 = drop.
  ctx.recv_filter.push_size().push_field(f_len_).op(FilterOp::kNe).abort_if(0);
  ctx.recv_filter.push_field(f_cksum_).digest(cfg_.digest, wide)
      .op(FilterOp::kNe).abort_if(0);
}

void BottomLayer::write_conn_ident(HeaderView& hdr, bool incoming) const {
  const Address& src = incoming ? cfg_.remote : cfg_.local;
  const Address& dst = incoming ? cfg_.local : cfg_.remote;
  for (std::size_t i = 0; i < 4; ++i) {
    hdr.set(f_src_[i], src.words[i]);
    hdr.set(f_dst_[i], dst.words[i]);
  }
  hdr.set(f_group_, cfg_.group);
  hdr.set(f_version_, cfg_.version);
}

bool BottomLayer::match_conn_ident(const HeaderView& hdr) const {
  for (std::size_t i = 0; i < 4; ++i) {
    if (hdr.get(f_src_[i]) != cfg_.remote.words[i]) return false;
    if (hdr.get(f_dst_[i]) != cfg_.local.words[i]) return false;
  }
  return hdr.get(f_group_) == cfg_.group && hdr.get(f_version_) == cfg_.version;
}

std::uint64_t BottomLayer::compute_digest(const Message& msg,
                                          const HeaderView& hdr) const {
  return cfg_.checksum_covers_headers ? wide_digest(cfg_.digest, hdr, msg)
                                      : msg.payload_digest(cfg_.digest);
}

SendVerdict BottomLayer::pre_send(Message& msg, HeaderView& hdr) const {
  // Slow path (no send filter ran): write the message-specific fields here.
  // Must match the send filter's StoreDigest bit for bit.
  hdr.set(f_len_, msg.payload_len());
  hdr.set(f_cksum_, compute_digest(msg, hdr));
  return SendVerdict::kOk;
}

DeliverVerdict BottomLayer::pre_deliver(const Message& msg,
                                        const HeaderView& hdr) const {
  // Under the PA the receive filter already verified these; under the
  // classic engine this is where verification lives.
  if (hdr.get(f_len_) != msg.payload_len()) return DeliverVerdict::kDrop;
  if (hdr.get(f_cksum_) != compute_digest(msg, hdr)) {
    return DeliverVerdict::kDrop;
  }
  return DeliverVerdict::kDeliver;
}

void BottomLayer::post_send(const Message&, const HeaderView&, LayerOps&) {
  ++stats_.sent;
}

void BottomLayer::post_deliver(Message& msg, const HeaderView& hdr,
                               DeliverVerdict verdict, LayerOps&) {
  if (verdict == DeliverVerdict::kDeliver) {
    ++stats_.delivered;
  } else if (verdict == DeliverVerdict::kDrop) {
    if (hdr.get(f_len_) != msg.payload_len()) {
      ++stats_.length_drops;
    } else {
      ++stats_.checksum_drops;
    }
  }
}

void BottomLayer::predict_send(HeaderView&) const {
  // No protocol-specific or gossip fields: message-specific info cannot be
  // predicted; the send filter computes it (paper §3.2-3.3).
}

void BottomLayer::predict_deliver(HeaderView&) const {}

std::uint64_t BottomLayer::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = digest_mix(h, stats_.sent);
  h = digest_mix(h, stats_.delivered);
  h = digest_mix(h, stats_.checksum_drops);
  h = digest_mix(h, stats_.length_drops);
  return h;
}

}  // namespace pa
