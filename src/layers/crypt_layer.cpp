#include "layers/crypt_layer.h"

#include <cstring>

namespace pa {

namespace {

// splitmix64 finalizer: the keyed PRF underneath the counter-mode stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

// SipHash-2-4 (Aumasson & Bernstein), 64-bit tag.
std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                        std::span<const std::uint8_t> data) {
  std::uint64_t v0 = 0x736f6d6570736575ull ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dull ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ull ^ k0;
  std::uint64_t v3 = 0x7465646279746573ull ^ k1;

  auto sipround = [&] {
    v0 += v1; v1 = rotl(v1, 13); v1 ^= v0; v0 = rotl(v0, 32);
    v2 += v3; v3 = rotl(v3, 16); v3 ^= v2;
    v0 += v3; v3 = rotl(v3, 21); v3 ^= v0;
    v2 += v1; v1 = rotl(v1, 17); v1 ^= v2; v2 = rotl(v2, 32);
  };

  const std::size_t n = data.size();
  const std::size_t end = n - (n % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    std::uint64_t m;
    std::memcpy(&m, data.data() + i, 8);
    v3 ^= m;
    sipround();
    sipround();
    v0 ^= m;
  }
  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  for (std::size_t i = end; i < n; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));
  }
  v3 ^= last;
  sipround();
  sipround();
  v0 ^= last;
  v2 ^= 0xff;
  sipround();
  sipround();
  sipround();
  sipround();
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace

void CryptLayer::init(LayerInit& ctx) {
  f_nonce_ = ctx.layout.add_field(FieldClass::kProtoSpec, "aead_nonce", 32);
}

SendVerdict CryptLayer::pre_send(Message&, HeaderView& hdr) const {
  hdr.set(f_nonce_, next_nonce_);
  return SendVerdict::kOk;
}

DeliverVerdict CryptLayer::pre_deliver(const Message&,
                                       const HeaderView&) const {
  // Any nonce decrypts (it travels in the header); ordering and duplicate
  // suppression belong to the reliability layers above us.
  return DeliverVerdict::kDeliver;
}

void CryptLayer::post_send(const Message&, const HeaderView&, LayerOps&) {
  ++next_nonce_;
}

void CryptLayer::post_deliver(Message&, const HeaderView& hdr,
                              DeliverVerdict verdict, LayerOps&) {
  if (verdict == DeliverVerdict::kDrop) return;
  // Resync the prediction forward only: a retransmission replays an old
  // nonce and must not regress the expectation.
  const auto nonce = static_cast<std::uint32_t>(hdr.get(f_nonce_));
  if (!nonce_lt(nonce, expected_in_)) expected_in_ = nonce + 1;
}

void CryptLayer::predict_send(HeaderView& hdr) const {
  hdr.set(f_nonce_, next_nonce_);
}

void CryptLayer::predict_deliver(HeaderView& hdr) const {
  hdr.set(f_nonce_, expected_in_);
}

std::uint64_t CryptLayer::keystream_block(std::uint32_t nonce,
                                          std::uint64_t block) const {
  const std::uint64_t iv =
      mix64(cfg_.key1 ^ (static_cast<std::uint64_t>(nonce) << 20));
  return mix64(cfg_.key0 ^ iv ^ (block * 0x9e3779b97f4a7c15ull));
}

void CryptLayer::apply_keystream(std::uint32_t nonce,
                                 std::span<const std::uint8_t> in,
                                 std::uint8_t* out) const {
  const std::size_t n = in.size();
  for (std::size_t off = 0; off < n; off += 8) {
    const std::uint64_t ks = keystream_block(nonce, off / 8);
    const std::size_t take = n - off < 8 ? n - off : 8;
    std::uint8_t ksb[8];
    std::memcpy(ksb, &ks, 8);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ ksb[i];
  }
}

std::uint64_t CryptLayer::tag(std::uint32_t nonce,
                              std::span<const std::uint8_t> ct) const {
  return siphash24(cfg_.key0, cfg_.key1 ^ nonce, ct);
}

bool CryptLayer::encode_frame(Message& msg, const HeaderView& hdr) const {
  const auto nonce = static_cast<std::uint32_t>(hdr.get(f_nonce_));
  const std::span<const std::uint8_t> pt = msg.payload();
  std::vector<std::uint8_t> ct(pt.size() + kTagBytes);
  apply_keystream(nonce, pt, ct.data());
  const std::uint64_t t =
      tag(nonce, std::span<const std::uint8_t>(ct.data(), pt.size()));
  std::memcpy(ct.data() + pt.size(), &t, kTagBytes);
  stats_.bytes_sealed += pt.size();
  ++stats_.frames_sealed;
  msg.replace_payload(std::move(ct));
  return true;
}

bool CryptLayer::decode_frame(Message& msg, const HeaderView& hdr) const {
  const std::span<const std::uint8_t> wire = msg.payload();
  if (wire.size() < kTagBytes) {
    ++stats_.auth_failures;
    return false;
  }
  const auto nonce = static_cast<std::uint32_t>(hdr.get(f_nonce_));
  const std::size_t n = wire.size() - kTagBytes;
  std::uint64_t claimed;
  std::memcpy(&claimed, wire.data() + n, kTagBytes);
  if (claimed != tag(nonce, wire.first(n))) {
    ++stats_.auth_failures;
    return false;
  }
  std::vector<std::uint8_t> pt(n);
  apply_keystream(nonce, wire.first(n), pt.data());
  ++stats_.frames_opened;
  msg.replace_payload(std::move(pt));
  return true;
}

std::uint64_t CryptLayer::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = digest_mix(h, next_nonce_);
  h = digest_mix(h, expected_in_);
  h = digest_mix(h, cfg_.key0);
  h = digest_mix(h, cfg_.key1);
  return h;
}

}  // namespace pa
