// BottomLayer: the wire-adjacent layer.
//
// Owns the connection identification (large endpoint addresses — in Horus
// the conn-ident occupies about 76 bytes, which is exactly what this layer
// registers: 2 x 32-byte endpoint addresses, an 8-byte group id and a
// 4-byte version) and the message-specific integrity fields (length and
// checksum), which it wires into the send/receive packet filters.
#pragma once

#include <array>

#include "layers/layer.h"
#include "util/checksum.h"

namespace pa {

/// A 32-byte endpoint address (modeled after Horus's large endpoint ids;
/// the paper's point that addresses keep growing is why conn-ident
/// compression matters).
struct Address {
  std::array<std::uint64_t, 4> words{};

  friend bool operator==(const Address&, const Address&) = default;
};

struct BottomConfig {
  Address local;
  Address remote;
  std::uint64_t group = 0;
  std::uint32_t version = 1;
  DigestKind digest = DigestKind::kCrc32c;
  // Cover the predictable header regions (proto-spec, gossip, packing) with
  // the checksum, not just the payload. A corrupted sequence number is
  // otherwise *silently accepted* — the frame lands in the wrong window slot
  // and the stream misdelivers. Costs a few dozen extra digested bytes per
  // frame; off reproduces the paper's payload-only checksum.
  bool checksum_covers_headers = true;
};

class BottomLayer final : public Layer {
 public:
  explicit BottomLayer(BottomConfig cfg) : cfg_(cfg) {}

  LayerKind kind() const override { return LayerKind::kBottom; }
  std::string_view name() const override { return "bottom"; }

  void init(LayerInit& ctx) override;
  void write_conn_ident(HeaderView& hdr, bool incoming) const override;
  bool match_conn_ident(const HeaderView& hdr) const override;

  SendVerdict pre_send(Message& msg, HeaderView& hdr) const override;
  DeliverVerdict pre_deliver(const Message& msg,
                             const HeaderView& hdr) const override;
  void post_send(const Message& msg, const HeaderView& hdr,
                 LayerOps& ops) override;
  void post_deliver(Message& msg, const HeaderView& hdr,
                    DeliverVerdict verdict, LayerOps& ops) override;
  void predict_send(HeaderView& hdr) const override;
  void predict_deliver(HeaderView& hdr) const override;
  std::uint64_t state_digest() const override;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t checksum_drops = 0;
    std::uint64_t length_drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::uint64_t compute_digest(const Message& msg,
                               const HeaderView& hdr) const;

  BottomConfig cfg_;
  // conn-ident fields
  std::array<FieldHandle, 4> f_src_{};
  std::array<FieldHandle, 4> f_dst_{};
  FieldHandle f_group_{};
  FieldHandle f_version_{};
  // msg-spec fields
  FieldHandle f_len_{};
  FieldHandle f_cksum_{};

  Stats stats_;
};

}  // namespace pa
