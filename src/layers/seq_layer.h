// SeqLayer: a pure FIFO-ordering layer.
//
// Carries its own 32-bit stream sequence number (protocol-specific, hence
// fully predictable) and stashes out-of-order messages until the gap fills.
// On the standard stack it sits above the window layer (which already
// delivers in order), mirroring how real Horus stacks compose small,
// partially redundant layers; on its own it provides ordering without
// reliability and is exercised that way by tests.
#pragma once

#include <map>

#include "layers/layer.h"

namespace pa {

class SeqLayer final : public Layer {
 public:
  explicit SeqLayer(std::uint32_t initial_seq = 0)
      : next_out_(initial_seq), expected_in_(initial_seq) {}

  LayerKind kind() const override { return LayerKind::kSeq; }
  std::string_view name() const override { return "seq"; }

  void init(LayerInit& ctx) override;

  SendVerdict pre_send(Message& msg, HeaderView& hdr) const override;
  DeliverVerdict pre_deliver(const Message& msg,
                             const HeaderView& hdr) const override;
  void post_send(const Message& msg, const HeaderView& hdr,
                 LayerOps& ops) override;
  void post_deliver(Message& msg, const HeaderView& hdr,
                    DeliverVerdict verdict, LayerOps& ops) override;
  void predict_send(HeaderView& hdr) const override;
  void predict_deliver(HeaderView& hdr) const override;
  std::uint64_t state_digest() const override;
  // Commutative send-half + recv-half (see Layer::sync_digest): this end's
  // send cursor must pair with the *peer's* receive cursor.
  std::uint64_t sync_digest() const override {
    return sync_half(next_out_, 0) + sync_half(expected_in_, stash_.size());
  }

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t stashed = 0;
    std::uint64_t dropped = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint32_t next_out() const { return next_out_; }
  std::uint32_t expected_in() const { return expected_in_; }

 private:
  static bool seq_lt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) < 0;
  }

  FieldHandle f_seq_{};  // proto-spec, 32 bits

  std::uint32_t next_out_;
  std::uint32_t expected_in_;
  std::map<std::uint32_t, Message, SerialLess> stash_;
  Stats stats_;
};

}  // namespace pa
