#include "layers/seq_layer.h"

namespace pa {

void SeqLayer::init(LayerInit& ctx) {
  f_seq_ = ctx.layout.add_field(FieldClass::kProtoSpec, "fifo_seq", 32);
}

SendVerdict SeqLayer::pre_send(Message&, HeaderView& hdr) const {
  hdr.set(f_seq_, next_out_);
  return SendVerdict::kOk;
}

DeliverVerdict SeqLayer::pre_deliver(const Message&,
                                     const HeaderView& hdr) const {
  const auto seq = static_cast<std::uint32_t>(hdr.get(f_seq_));
  if (seq == expected_in_) return DeliverVerdict::kDeliver;
  if (seq_lt(seq, expected_in_)) return DeliverVerdict::kDrop;
  return DeliverVerdict::kConsume;
}

void SeqLayer::post_send(const Message&, const HeaderView&, LayerOps&) {
  ++next_out_;
  ++stats_.sent;
}

void SeqLayer::post_deliver(Message& msg, const HeaderView& hdr,
                            DeliverVerdict verdict, LayerOps& ops) {
  switch (verdict) {
    case DeliverVerdict::kDeliver: {
      ++expected_in_;
      ++stats_.delivered;
      auto it = stash_.find(expected_in_);
      while (it != stash_.end()) {
        Message next = std::move(it->second);
        stash_.erase(it);
        ++expected_in_;
        ++stats_.delivered;
        ops.release_up(std::move(next));
        it = stash_.find(expected_in_);
      }
      break;
    }
    case DeliverVerdict::kConsume: {
      const auto seq = static_cast<std::uint32_t>(hdr.get(f_seq_));
      if (stash_.emplace(seq, std::move(msg)).second) ++stats_.stashed;
      break;
    }
    case DeliverVerdict::kDrop:
      ++stats_.dropped;
      break;
  }
}

void SeqLayer::predict_send(HeaderView& hdr) const {
  hdr.set(f_seq_, next_out_);
}

void SeqLayer::predict_deliver(HeaderView& hdr) const {
  hdr.set(f_seq_, expected_in_);
}

std::uint64_t SeqLayer::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = digest_mix(h, next_out_);
  h = digest_mix(h, expected_in_);
  h = digest_mix(h, stash_.size());
  h = digest_mix(h, stats_.sent);
  h = digest_mix(h, stats_.delivered);
  h = digest_mix(h, stats_.stashed);
  h = digest_mix(h, stats_.dropped);
  return h;
}

}  // namespace pa
