// CompLayer: LZ4-class per-message payload compression.
//
// Compression is a *message transformation* in the paper's sense (§6, like
// fragmentation): it runs at send initiation via transform_send() — which
// may mutate state — and its inverse runs at the app-delivery boundary via
// the deliver-transform hook (Layer::decode_part), once per unpacked
// sub-message. The layer registers NO header fields: its framing is
// in-band, a one-byte tag in front of the payload
//
//   [0x00][original bytes...]                 stored (incompressible)
//   [0x01][varint original_len][lz bytes...]  compressed
//
// so the wire headers — and therefore the PA's predictions — are untouched
// by whether any given payload compressed well. The stored pass-through is
// zero-copy both ways: sending appends the original payload chain by
// reference behind the tag byte, delivery hands the app a subspan.
//
// The compressor is a greedy hash-table LZ (LZ4 block idiom: literal-run /
// match token stream with 16-bit offsets) written against std:: only. It
// sits above fragmentation (traits rank 10 < frag 20), so big payloads
// shrink *before* they are cut into MTU-sized fragments, and each fragment
// inherits cb.comp_done so the engine's transform pass never re-compresses.
#pragma once

#include "layers/layer.h"

namespace pa {

struct CompConfig {
  std::size_t min_payload = 64;  // don't bother below this many bytes
  // Keep the compressed form only if it saves at least this fraction.
  double min_gain = 0.05;
};

class CompLayer final : public Layer {
 public:
  explicit CompLayer(CompConfig cfg) : cfg_(cfg) {}

  LayerKind kind() const override { return LayerKind::kComp; }
  std::string_view name() const override { return "comp"; }

  void init(LayerInit& ctx) override;

  SendVerdict pre_send(Message& msg, HeaderView& hdr) const override;
  DeliverVerdict pre_deliver(const Message& msg,
                             const HeaderView& hdr) const override;
  void post_send(const Message& msg, const HeaderView& hdr,
                 LayerOps& ops) override;
  void post_deliver(Message& msg, const HeaderView& hdr,
                    DeliverVerdict verdict, LayerOps& ops) override;
  void predict_send(HeaderView& hdr) const override;
  void predict_deliver(HeaderView& hdr) const override;

  std::vector<Message> transform_send(Message& msg) override;

  bool has_deliver_transform() const override { return true; }
  bool decode_part(std::span<const std::uint8_t> in,
                   std::span<const std::uint8_t>& res,
                   std::vector<std::uint8_t>& scratch) const override;

  std::uint64_t state_digest() const override;

  struct Stats {
    std::uint64_t msgs_compressed = 0;
    std::uint64_t msgs_stored = 0;      // pass-through (incompressible/small)
    std::uint64_t msgs_inflated = 0;    // deliver-side decompressions
    std::uint64_t bytes_in = 0;         // plaintext bytes offered
    std::uint64_t bytes_out = 0;        // bytes shipped (tag included)
    std::uint64_t codec_errors = 0;     // undecodable framing seen
  };
  const Stats& stats() const { return stats_; }

  /// Exposed for tests: raw LZ round-trip without the tag framing.
  static std::vector<std::uint8_t> lz_compress(
      std::span<const std::uint8_t> src);
  static bool lz_decompress(std::span<const std::uint8_t> src,
                            std::size_t orig_len,
                            std::vector<std::uint8_t>& out);

 private:
  CompConfig cfg_;
  // decode_part is const (it runs in the engine's deliver window); the
  // inflate/error counters are observability-only and excluded from
  // state_digest, so mutable is safe.
  mutable Stats stats_;
};

}  // namespace pa
