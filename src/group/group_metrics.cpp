#include "group/group_metrics.h"

namespace pa::group {

GroupMetrics& group_metrics() {
  static GroupMetrics m{
      obs::registry().counter("group_mcasts_total",
                              "logical group multicast sends"),
      obs::registry().counter(
          "group_fanout_sends_total",
          "per-member engine sends produced by multicasts"),
      obs::registry().counter("group_delivers_total",
                              "group messages delivered to members"),
      obs::registry().counter(
          "group_beacons_total",
          "stability/membership beacons attempted (pre-shed)"),
      obs::registry().counter("group_gossip_frames_total",
                              "frames carrying non-empty group gossip"),
      obs::registry().counter(
          "group_stale_gossip_total",
          "gossip ignored as older than already-held state"),
      obs::registry().counter("group_joins_total", "member join transitions"),
      obs::registry().counter("group_leaves_total",
                              "member leave transitions"),
      obs::registry().counter("group_suspects_total",
                              "member suspect transitions"),
      obs::registry().counter("group_restores_total",
                              "suspect members restored on hearing them"),
      obs::registry().gauge("group_members",
                            "joined members of the last-polled group"),
      obs::registry().gauge("group_view_epoch",
                            "view epoch of the last-polled group"),
      obs::registry().gauge(
          "group_stability_lag",
          "last multicast seq minus the group-stable (min-acked) seq"),
      obs::registry().gauge(
          "group_fanout_amplification_x1000",
          "engine sends per logical multicast, times 1000"),
      obs::registry().histogram("group_deliver_ns",
                                "multicast send to per-member delivery"),
  };
  return m;
}

}  // namespace pa::group
