// McastGroup: one-to-many multicast over the Protocol Accelerator.
//
// One logical mcast() crosses the application boundary once — the payload
// is adopted into a single chunk-chained Message — and reaches N members by
// cloning that chain per member connection: each clone is a refcount bump
// (buf/message.h), so byte copies per logical send are O(1) in the group
// size. Every member link is an ordinary PA connection running the
// canonical stack plus a GroupGossipLayer, which means each destination
// keeps its own packing train, header prediction and retransmission
// machinery — the paper's masking techniques amortize the fanout exactly
// as they amortize a point-to-point stream.
//
// Membership (an epoch-versioned GroupView, src/group/membership.h) and
// stability (min delivered seqno over joined members) are maintained purely
// from gossip piggybacked on this traffic: members echo the view
// epoch+digest they last saw and advertise their delivery cursor in the
// gossip header class; idle links fall back to beacons. The coordinator
// never sends a dedicated membership round.
//
// For members colocated on one node, Router::register_group() offers a
// shard fanout: one frame on the wire is delivered to every colocated
// member engine by WireFrame copy (refcount bumps). That path is exercised
// by tests/group_chaos_test.cpp and bench_fanout directly; McastGroup
// itself keeps one connection per member so every member has full
// per-destination reliability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "group/gossip_layer.h"
#include "group/membership.h"
#include "health/plane.h"
#include "horus/world.h"
#include "obs/metrics.h"

namespace pa::group {

struct McastOptions {
  GroupId gid = 1;
  /// Base per-link options. use_pa and cookie_preagreed are forced on (the
  /// fanout path is cookie-routed); everything else is honoured.
  ConnOptions conn{};
  /// Gossip beacon idle interval for both sides; 0 disables beacons (then
  /// stability only advances while traffic flows). NOTE: beacons re-arm
  /// forever, like heartbeats — run with a bounded horizon, or disable.
  VtDur beacon_interval = vt_ms(25);
  /// Gossip silence before a member is suspected by poll(); 0 disables.
  VtDur suspect_after = vt_ms(200);
  /// Per-member priorities (default 1). Priority 0 = low: that member's
  /// beacons are shed at Saturated (ShedClass::kLiveness); others survive
  /// until Critical (kGossipAck).
  std::vector<std::uint8_t> priorities;
  /// Send-timestamp history bound for delivery-latency tracking.
  std::size_t history = 4096;
  /// Opt-in health plane (src/health/plane.h). When on, the raw
  /// suspect_after silence sweep and the instant heard->restore path are
  /// replaced by phi-accrual suspicion, indirect witness probing over
  /// member<->member PA connections, and flap-damped restores; a confirmed-
  /// dead member leaves the view (and rejoins on restore after a heal).
  bool use_health = false;
  health::HealthConfig health{};
};

class McastGroup {
 public:
  using DeliverFn = std::function<void(
      MemberId src, std::uint32_t seq, std::span<const std::uint8_t>)>;

  /// Build the group: one PA connection sender->member per member node.
  /// Member ids are 0..members.size()-1 in the given order; all start
  /// joined (the view's epoch reflects the joins).
  McastGroup(World& w, Node& sender, const std::vector<Node*>& members,
             McastOptions opt = {});

  /// One logical multicast. Returns the group seqno (first send is 1).
  std::uint32_t mcast(std::span<const std::uint8_t> payload);

  /// Application delivery callback for one member (src is the group-header
  /// origin — always the coordinator here; seq is the group seqno).
  void on_deliver(MemberId m, DeliverFn fn);

  /// Suspect sweep + outbound gossip/metric refresh. Call periodically
  /// (tests/benches drive it between run_for slices).
  void poll();

  /// Drop a member for good: it stops receiving mcasts and stops holding
  /// stability back.
  void leave(MemberId m);

  GroupView& view() { return view_; }
  const GroupView& view() const { return view_; }
  GroupTable& table() { return table_; }
  /// The shared liveness authority (null unless opt.use_health).
  health::HealthPlane* health() { return health_.get(); }

  /// Partition healing: fold a diverged clique's view into ours (max-epoch
  /// wins, see GroupView::merge), re-arm the health plane for every member
  /// the merged view still suspects, and gossip the superseding epoch out.
  GroupView::MergeReport merge_view(const GroupView::ViewSnapshot& other);
  std::uint32_t last_seq() const { return last_seq_; }
  std::optional<std::uint32_t> stability() const { return view_.stability(); }
  /// last_seq - stable seq (last_seq when nothing is stable yet).
  std::uint32_t stability_lag() const;

  Endpoint* sender_endpoint(MemberId m) { return sender_eps_.at(m); }
  Endpoint* member_endpoint(MemberId m) { return member_eps_.at(m); }
  GroupGossipLayer* sender_gossip(MemberId m);
  GroupGossipLayer* member_gossip(MemberId m);
  const obs::LatencyHistogram& member_hist(MemberId m) const {
    return member_hists_.at(m);
  }

  /// Shed accounting across the fanout: per-reason drops summed over all
  /// sender-side (resp. member-side) engines of this group.
  std::uint64_t sender_drops(DropReason r) const;
  std::uint64_t member_drops(DropReason r) const;

  struct Stats {
    std::uint64_t mcasts = 0;
    std::uint64_t fanout_sends = 0;  // clones actually handed to engines
    std::uint64_t skipped_left = 0;  // member was kLeft at mcast time
    std::uint64_t delivered = 0;     // member deliveries (all members)
  };
  const Stats& stats() const { return stats_; }

 private:
  void refresh_outbound();
  void note_member_echo(MemberId m, std::uint16_t epoch,
                        std::uint32_t digest);
  void note_member_ack(MemberId m, std::uint32_t acked);
  void note_member_heard(MemberId m, Vt now);
  void on_member_deliver(MemberId m, std::span<const std::uint8_t> bytes);
  void prune_sent_log();
  void update_gauges();
  void init_health();
  void launch_probe_round(MemberId target);
  Endpoint* ensure_probe_link(MemberId witness, MemberId target);

  World* w_;
  McastOptions opt_;
  GroupTable table_;
  GroupView& view_;
  Node* sender_node_ = nullptr;
  std::vector<Node*> member_nodes_;

  std::vector<Endpoint*> sender_eps_;
  std::vector<Endpoint*> member_eps_;
  std::shared_ptr<GossipOutbound> sender_out_;
  std::vector<std::shared_ptr<GossipOutbound>> member_outs_;
  std::deque<obs::LatencyHistogram> member_hists_;
  std::vector<DeliverFn> user_fns_;

  std::uint32_t last_seq_ = 0;
  std::map<std::uint32_t, Vt> sent_at_;
  Stats stats_;

  // --- health plane (opt-in) ---------------------------------------------
  std::unique_ptr<health::HealthPlane> health_;
  /// Lazily-built witness probe links, keyed (witness << 16) | target.
  /// Each is an ordinary PA connection between two member nodes: the
  /// witness pings, the target echoes, the ack proves the target is alive
  /// even when the coordinator's own path to it is down.
  std::map<std::uint32_t, Endpoint*> probe_links_;
};

}  // namespace pa::group
