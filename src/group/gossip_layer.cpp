#include "group/gossip_layer.h"

#include "group/group_metrics.h"
#include "layers/layer.h"

namespace pa::group {

void GroupGossipLayer::init(LayerInit& ctx) {
  f_beacon_ = ctx.layout.add_field(FieldClass::kProtoSpec, "grpb", 1);
  f_epoch_ = ctx.layout.add_field(FieldClass::kGossip, "gepoch", 16);
  f_digest_ = ctx.layout.add_field(FieldClass::kGossip, "gdigest", 32);
  f_ack_ = ctx.layout.add_field(FieldClass::kGossip, "gack", 32);
}

void GroupGossipLayer::write_gossip(HeaderView& hdr) const {
  hdr.set(f_epoch_, out_->epoch);
  hdr.set(f_digest_, out_->digest);
  hdr.set(f_ack_, out_->has_ack ? out_->acked + 1 : 0);
}

SendVerdict GroupGossipLayer::pre_send(Message& msg, HeaderView& hdr) const {
  (void)msg;
  hdr.set(f_beacon_, 0);
  write_gossip(hdr);
  return SendVerdict::kOk;
}

DeliverVerdict GroupGossipLayer::pre_deliver(const Message&,
                                             const HeaderView& hdr) const {
  // Beacons exist for their gossip, which post_deliver harvests; the
  // application never sees them.
  return hdr.get(f_beacon_) == 0 ? DeliverVerdict::kDeliver
                                 : DeliverVerdict::kConsume;
}

void GroupGossipLayer::post_send(const Message&, const HeaderView&,
                                 LayerOps& ops) {
  last_sent_ = ops.now();
  arm(ops);
}

void GroupGossipLayer::post_deliver(Message&, const HeaderView& hdr,
                                    DeliverVerdict verdict, LayerOps& ops) {
  if (verdict == DeliverVerdict::kConsume && hdr.get(f_beacon_) != 0) {
    ++stats_.beacons_received;
  }
  if (hooks_.on_heard) hooks_.on_heard(ops.now());

  // Harvest the gossip region. All-zero means the frame was emitted below
  // this layer (window ack, heartbeat) and simply has nothing to say —
  // out-of-date or absent gossip must be harmless (paper §2.1).
  const std::uint64_t epoch = hdr.get(f_epoch_);
  const std::uint64_t digest = hdr.get(f_digest_);
  const std::uint64_t ack_wire = hdr.get(f_ack_);
  if (epoch == 0 && digest == 0 && ack_wire == 0) return;
  ++stats_.gossip_frames_seen;
  group_metrics().gossip_frames.inc();
  if (digest != 0 && hooks_.on_view) {
    ++stats_.views_seen;
    hooks_.on_view(static_cast<std::uint16_t>(epoch),
                   static_cast<std::uint32_t>(digest));
  }
  if (ack_wire != 0 && hooks_.on_ack) {
    ++stats_.acks_seen;
    hooks_.on_ack(static_cast<std::uint32_t>(ack_wire - 1));
  }
  // Receiving traffic obliges us to keep our own gossip audible.
  arm(ops);
}

void GroupGossipLayer::arm(LayerOps& ops) {
  if (timer_armed_ || cfg_.beacon_interval <= 0) return;
  timer_armed_ = true;
  ops.set_timer(cfg_.beacon_interval, [this](LayerOps& t) {
    timer_armed_ = false;
    if (t.now() - last_sent_ >= cfg_.beacon_interval) {
      // Counted before emit_down: the governor may shed the emission
      // (ShedClass), and `attempted - shed_* = emitted` must hold exactly.
      ++stats_.beacons_attempted;
      group_metrics().beacons.inc();
      last_sent_ = t.now();
      Message beacon;
      beacon.cb.protocol = true;
      t.emit_down(std::move(beacon), [this](HeaderView& hdr) {
        hdr.set(f_beacon_, 1);
        write_gossip(hdr);
      });
    }
    arm(t);
  });
}

void GroupGossipLayer::predict_send(HeaderView& hdr) const {
  hdr.set(f_beacon_, 0);
  // The prediction embeds a gossip *snapshot*: fast sends stamp it as-is,
  // so gossip on the wire may lag the live Outbound until the next
  // prediction rebuild (post batch or timer). That staleness is the
  // paper's contract for the gossip class.
  write_gossip(hdr);
}

void GroupGossipLayer::predict_deliver(HeaderView& hdr) const {
  hdr.set(f_beacon_, 0);
  // Deliver prediction only ever compares the protocol-specific region;
  // the gossip values written here are never checked (varying gossip must
  // not break the delivery fast path). Zeros keep the scratch canonical.
  hdr.set(f_epoch_, 0);
  hdr.set(f_digest_, 0);
  hdr.set(f_ack_, 0);
}

std::uint64_t GroupGossipLayer::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = digest_mix(h, out_->epoch);
  h = digest_mix(h, out_->digest);
  h = digest_mix(h, out_->has_ack ? out_->acked + 1 : 0);
  h = digest_mix(h, static_cast<std::uint64_t>(last_sent_));
  h = digest_mix(h, timer_armed_ ? 1 : 0);
  h = digest_mix(h, stats_.beacons_attempted);
  h = digest_mix(h, stats_.gossip_frames_seen);
  return h;
}

}  // namespace pa::group
