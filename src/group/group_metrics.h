// Process-global group-communication metrics, registered lazily in the
// global obs registry (same idiom as the accelerator's phase histograms).
// Catalogued in docs/OBSERVABILITY.md; coverage-checked by tests/obs_test.
#pragma once

#include "obs/metrics.h"

namespace pa::group {

struct GroupMetrics {
  obs::Counter& mcasts;          // logical group sends
  obs::Counter& fanout_sends;    // per-member engine sends those produced
  obs::Counter& delivers;        // member deliveries
  obs::Counter& beacons;         // stability/membership beacons attempted
  obs::Counter& gossip_frames;   // frames whose group gossip was non-empty
  obs::Counter& stale_gossip;    // gossip ignored as older than what we hold
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& suspects;
  obs::Counter& restores;
  obs::Gauge& members;           // joined members of the last-polled group
  obs::Gauge& view_epoch;        // its current view epoch
  obs::Gauge& stability_lag;     // last mcast seq minus group-stable seq
  obs::Gauge& fanout_amplification_x1000;  // fanout_sends/mcasts, scaled
  obs::LatencyHistogram& deliver_ns;       // per-member delivery latency
};

GroupMetrics& group_metrics();

}  // namespace pa::group
