// GroupGossipLayer: membership + stability gossip riding the gossip header
// class (paper §2.1).
//
// The gossip class exists for exactly this: small, frequently-refreshed
// state that wants to ride every outgoing message for free, is not compared
// on the delivery fast path (unlike protocol-specific fields), and must be
// harmless when stale or missing. This layer stamps three gossip fields on
// every frame its connection sends:
//
//   gepoch (16b) + gdigest (32b) — the sender's current view epoch and
//       membership digest. Members echo the pair they last saw, which is
//       how the coordinator observes view convergence.
//   gack (32b) — highest group seqno this endpoint has delivered, PLUS ONE:
//       zero is the "no information" sentinel, because frames emitted by
//       layers *below* this one (window acks, heartbeats) carry an
//       all-zero gossip region and must be harmless.
//
// Fast-path interaction (the point of the exercise): on the send side the
// predicted header includes a *snapshot* of these fields — a fast send
// stamps possibly stale gossip, by design; predictions refresh after every
// post batch. On the delivery side the predicted-header memcmp covers the
// protocol-specific region only, so varying gossip never causes a
// prediction miss. tests/gossip_test.cpp pins both properties.
//
// When the connection is idle a timer emits a beacon (protocol message
// flagged by a 1-bit proto-spec field, consumed before the application)
// whose only cargo is the gossip — stability keeps advancing without data.
// Beacons are shed by the overload governor according to shed_class(),
// which the group sender assigns from the member's priority: low-priority
// members' beacons go first (kLiveness, shed at Saturated), high-priority
// ones survive until Critical (kGossipAck). Data is never shed here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "layers/layer.h"
#include "util/types.h"

namespace pa::group {

/// What this endpoint currently stamps outward. Shared (shared_ptr) with
/// the owner, which refreshes it as views change and deliveries advance;
/// the layer samples it in pre_send/predict_send.
struct GossipOutbound {
  std::uint16_t epoch = 0;
  std::uint32_t digest = 0;   // 0 = nothing to say yet
  bool has_ack = false;
  std::uint32_t acked = 0;    // wire value is acked+1 (0 = no info)
};

/// Post-deliver callbacks into the owner (coordinator or member core).
/// They run in the deferred post phase, so they may mutate owner state.
struct GossipHooks {
  std::function<void(std::uint16_t epoch, std::uint32_t digest)> on_view;
  std::function<void(std::uint32_t acked)> on_ack;
  std::function<void(Vt now)> on_heard;
};

struct GroupGossipConfig {
  /// Idle gap before a gossip beacon is emitted; 0 disables beacons (then
  /// gossip rides data and the other side's traffic only).
  VtDur beacon_interval = vt_ms(25);
  /// Governor shed class for beacons (see file comment).
  ShedClass shed = ShedClass::kLiveness;
};

class GroupGossipLayer final : public Layer {
 public:
  GroupGossipLayer(GroupGossipConfig cfg, std::shared_ptr<GossipOutbound> out,
                   GossipHooks hooks)
      : cfg_(cfg), out_(std::move(out)), hooks_(std::move(hooks)) {}

  LayerKind kind() const override { return LayerKind::kCustom; }
  std::string_view name() const override { return "group-gossip"; }
  ShedClass shed_class() const override { return cfg_.shed; }

  void init(LayerInit& ctx) override;

  SendVerdict pre_send(Message& msg, HeaderView& hdr) const override;
  DeliverVerdict pre_deliver(const Message& msg,
                             const HeaderView& hdr) const override;
  void post_send(const Message& msg, const HeaderView& hdr,
                 LayerOps& ops) override;
  void post_deliver(Message& msg, const HeaderView& hdr,
                    DeliverVerdict verdict, LayerOps& ops) override;
  void predict_send(HeaderView& hdr) const override;
  void predict_deliver(HeaderView& hdr) const override;
  std::uint64_t state_digest() const override;

  struct Stats {
    std::uint64_t beacons_attempted = 0;  // bumped before emit_down, so
                                          // attempted - governor sheds =
                                          // beacons actually emitted
    std::uint64_t beacons_received = 0;
    std::uint64_t gossip_frames_seen = 0;  // non-empty gossip region
    std::uint64_t acks_seen = 0;
    std::uint64_t views_seen = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void write_gossip(HeaderView& hdr) const;
  void arm(LayerOps& ops);

  GroupGossipConfig cfg_;
  std::shared_ptr<GossipOutbound> out_;
  GossipHooks hooks_;

  FieldHandle f_beacon_{};  // proto-spec, 1 bit
  FieldHandle f_epoch_{};   // gossip, 16 bits
  FieldHandle f_digest_{};  // gossip, 32 bits
  FieldHandle f_ack_{};     // gossip, 32 bits (acked+1; 0 = no info)

  Vt last_sent_ = 0;
  bool timer_armed_ = false;
  Stats stats_;
};

}  // namespace pa::group
