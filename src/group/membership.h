// Group membership: epoch-versioned member views (Horus's core abstraction).
//
// A GroupView is one group's membership as seen by its coordinator (the
// multicast sender in this reproduction): a map of members, each in one of
// three states (joined / suspect / left), versioned by an epoch that bumps
// on every transition. The view is summarized by a commutative 32-bit
// digest; the digest and epoch ride the gossip header class on every frame
// (src/group/gossip_layer.h), so members learn of view changes from traffic
// they were receiving anyway — the paper's rule that gossip must be cheap
// to stamp and harmless when stale (§2.1) is what makes this free.
//
// The view also accumulates *stability*: per-member highest-delivered group
// seqno (piggybacked the same way, in the reverse direction), whose minimum
// over joined members is the group-stable seqno — everything at or below it
// may be garbage-collected by the sender.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/types.h"

namespace pa::group {

using GroupId = std::uint64_t;
using MemberId = std::uint16_t;

enum class MemberState : std::uint8_t { kJoined, kSuspect, kLeft };

const char* member_state_name(MemberState s);

struct Member {
  MemberState state = MemberState::kJoined;
  std::uint8_t priority = 1;  // 0 = low: its liveness beacons are shed first
  // gossip bookkeeping (what we have heard FROM this member)
  bool heard = false;
  Vt last_heard = 0;
  bool has_ack = false;
  std::uint32_t acked = 0;        // highest group seq the member delivered
  std::uint16_t epoch_echoed = 0; // view epoch the member last echoed back
  std::uint32_t digest_echoed = 0;
};

/// One group's epoch-versioned membership view. Single-threaded: owned and
/// mutated by the group coordinator's post-phase work.
class GroupView {
 public:
  explicit GroupView(GroupId id) : id_(id) {}

  GroupId id() const { return id_; }
  std::uint16_t epoch() const { return epoch_; }

  // --- transitions (each bumps the epoch) --------------------------------
  void join(MemberId m, std::uint8_t priority = 1);
  void leave(MemberId m);
  void suspect(MemberId m);
  void restore(MemberId m);  // suspect -> joined (heard from it again)

  const std::map<MemberId, Member>& members() const { return members_; }
  Member* find(MemberId m);
  const Member* find(MemberId m) const;
  std::size_t joined_count() const;

  /// Commutative 32-bit digest over (member, state, priority) — insertion
  /// order never matters, so two views that agree member-for-member agree
  /// on the digest. The epoch travels separately (it orders digests).
  std::uint32_t digest() const;

  /// Group-stable seqno: min acked over joined members (nullopt until every
  /// joined member has reported at least one ack). Suspected members do not
  /// hold stability back — their acks resume counting on restore.
  std::optional<std::uint32_t> stability() const;

  /// True when every joined member has echoed the current epoch + digest —
  /// the convergence condition the churn chaos test asserts.
  bool converged() const;

  // --- partition healing -------------------------------------------------
  // A partition splits a group into cliques that keep evolving their own
  // views (each side suspects the other's members and bumps its own
  // epoch). On re-contact the cliques must reconcile into ONE view, the
  // same one regardless of which side merges first.

  /// A portable copy of one view's membership (what a view-transfer
  /// message would carry on the wire).
  struct MemberSnapshot {
    MemberId id;
    MemberState state;
    std::uint8_t priority;
  };
  struct ViewSnapshot {
    GroupId id = 0;
    std::uint16_t epoch = 0;
    std::vector<MemberSnapshot> members;  // sorted by id (map order)
  };
  ViewSnapshot snapshot() const;

  /// Divergence check against an echoed (epoch, digest) pair: a peer
  /// echoing an epoch AHEAD of ours, or our own epoch with a different
  /// digest, has a view we never issued — a healed partition's other
  /// clique. note_echo() tolerates these (gossip must be harmless when
  /// stale, §2.1); divergent() is how the owner notices and triggers a
  /// snapshot exchange + merge().
  bool divergent(std::uint16_t echoed_epoch, std::uint32_t echoed_digest) const;

  struct MergeReport {
    bool changed = false;            // any member entry differed
    std::size_t added = 0;           // members we had never seen
    std::size_t conflicts = 0;       // entries where the states disagreed
    std::vector<MemberId> reprobe;   // suspects in the merged view
  };

  /// Deterministically merge a diverged clique's view into this one:
  ///   - membership is the union of both sides;
  ///   - conflicting entries resolve toward the higher-epoch view
  ///     (max-epoch wins); on an epoch tie the more cautious state wins
  ///     (left > suspect > joined), which makes the merge commutative —
  ///     both sides converge on the same member table and digest;
  ///   - the merged epoch is max(epochs) + 1, so the merged view
  ///     supersedes both inputs when it gossips out;
  ///   - every suspect in the merged view is listed for re-probing (the
  ///     health plane re-judges them; stale suspicions must not stick);
  ///   - stability recomputes naturally: members adopted from the other
  ///     side start with no ack state and must report again.
  MergeReport merge(const ViewSnapshot& other);

  // --- gossip bookkeeping (no epoch bump) --------------------------------
  void note_heard(MemberId m, Vt now);
  void note_ack(MemberId m, std::uint32_t acked);  // monotonic max
  void note_echo(MemberId m, std::uint16_t epoch, std::uint32_t digest);

  /// Mark joined members silent for longer than `silence` as suspect.
  /// Returns the number of transitions made.
  std::size_t sweep_suspects(Vt now, VtDur silence);

  struct Stats {
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t suspects = 0;
    std::uint64_t restores = 0;
    std::uint64_t merges = 0;  // partition-heal merges applied
  };
  const Stats& stats() const { return stats_; }

 private:
  void bump_epoch() { ++epoch_; }

  GroupId id_;
  std::uint16_t epoch_ = 0;
  std::map<MemberId, Member> members_;
  Stats stats_;
};

/// GroupTable: group id -> view. One per coordinating endpoint.
class GroupTable {
 public:
  /// Find-or-create (a fresh view has epoch 0 and no members).
  GroupView& ensure(GroupId id);
  GroupView* find(GroupId id);
  const GroupView* find(GroupId id) const;
  std::size_t size() const { return groups_.size(); }

 private:
  std::map<GroupId, GroupView> groups_;
};

}  // namespace pa::group
