#include "group/mcast.h"

#include <cassert>
#include <cstring>

#include "group/group_metrics.h"
#include "health/health_metrics.h"
#include "layers/window_layer.h"
#include "util/byte_order.h"

namespace pa::group {

namespace {
constexpr std::size_t kGroupHdr = 8;  // [u32 seq][u16 src][u16 flags]

GroupGossipLayer* find_gossip(Stack& stack) {
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (auto* g = dynamic_cast<GroupGossipLayer*>(&stack.layer(i))) return g;
  }
  return nullptr;
}
}  // namespace

McastGroup::McastGroup(World& w, Node& sender,
                       const std::vector<Node*>& members, McastOptions opt)
    : w_(&w),
      opt_(std::move(opt)),
      view_(table_.ensure(opt_.gid)),
      sender_node_(&sender),
      member_nodes_(members),
      sender_out_(std::make_shared<GossipOutbound>()) {
  const std::size_t n = members.size();
  sender_eps_.reserve(n);
  member_eps_.reserve(n);
  member_outs_.reserve(n);
  user_fns_.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    const MemberId mi = static_cast<MemberId>(i);
    const std::uint8_t prio =
        i < opt_.priorities.size() ? opt_.priorities[i] : 1;
    view_.join(mi, prio);
    group_metrics().joins.inc();
    member_outs_.push_back(std::make_shared<GossipOutbound>());
    member_hists_.emplace_back();

    ConnOptions c = opt_.conn;
    c.use_pa = true;            // fanout is cookie-routed
    c.cookie_preagreed = true;  // no ident scans across a 1k-engine router

    GroupGossipConfig gcfg;
    gcfg.beacon_interval = opt_.beacon_interval;
    // Low-priority members' liveness goes first under overload; the rest
    // keep their beacons until Critical.
    gcfg.shed = prio == 0 ? ShedClass::kLiveness : ShedClass::kGossipAck;

    // World::connect builds the a-side engine first, then the b-side; the
    // factory below relies on that to hand the coordinator-facing layer to
    // the a side and the member-facing layer to the b side.
    c.stack.extra_top_layers.push_back(
        [this, mi, gcfg, calls = std::make_shared<int>(0)]()
            -> std::unique_ptr<Layer> {
          const bool sender_side = (*calls)++ == 0;
          if (sender_side) {
            GossipHooks hooks;
            hooks.on_view = [this, mi](std::uint16_t epoch,
                                       std::uint32_t digest) {
              note_member_echo(mi, epoch, digest);
            };
            hooks.on_ack = [this, mi](std::uint32_t acked) {
              note_member_ack(mi, acked);
            };
            hooks.on_heard = [this, mi](Vt now) {
              note_member_heard(mi, now);
            };
            return std::make_unique<GroupGossipLayer>(gcfg, sender_out_,
                                                      std::move(hooks));
          }
          GossipHooks hooks;
          hooks.on_view = [this, mi](std::uint16_t epoch,
                                     std::uint32_t digest) {
            // The member echoes the newest view it has seen; regressions
            // are stale gossip and ignored.
            GossipOutbound& out = *member_outs_[mi];
            if (epoch < out.epoch) {
              group_metrics().stale_gossip.inc();
              return;
            }
            out.epoch = epoch;
            out.digest = digest;
          };
          return std::make_unique<GroupGossipLayer>(gcfg, member_outs_[mi],
                                                    std::move(hooks));
        });

    auto [se, me] = w.connect(sender, *members[i], c);
    sender_eps_.push_back(se);
    member_eps_.push_back(me);
    me->on_deliver([this, mi](std::span<const std::uint8_t> bytes) {
      on_member_deliver(mi, bytes);
    });
  }
  refresh_outbound();
  if (opt_.use_health) init_health();
  update_gauges();
}

void McastGroup::init_health() {
  health::HealthHooks hooks;
  hooks.on_suspect = [this](health::PeerId p) {
    const MemberId m = static_cast<MemberId>(p);
    view_.suspect(m);
    group_metrics().suspects.inc();
    refresh_outbound();
  };
  hooks.on_restore = [this](health::PeerId p) {
    const MemberId m = static_cast<MemberId>(p);
    const Member* mb = view_.find(m);
    if (mb != nullptr && mb->state == MemberState::kLeft) {
      // Confirmed dead earlier, alive now (a healed partition): rejoin.
      const std::uint8_t prio =
          m < opt_.priorities.size() ? opt_.priorities[m] : 1;
      view_.join(m, prio);
      group_metrics().joins.inc();
    } else {
      view_.restore(m);
      group_metrics().restores.inc();
    }
    refresh_outbound();
  };
  hooks.on_dead = [this](health::PeerId p) {
    // Confirmed dead — suspicion plus a failed indirect probe round. The
    // member leaves the view: it stops holding stability back and stops
    // receiving fanout clones until the health plane hears it again.
    view_.leave(static_cast<MemberId>(p));
    group_metrics().leaves.inc();
    refresh_outbound();
  };
  hooks.request_probe = [this](health::PeerId p) {
    launch_probe_round(static_cast<MemberId>(p));
  };
  health_ =
      std::make_unique<health::HealthPlane>(opt_.health, std::move(hooks));
  const Vt now = w_->now();
  for (std::size_t i = 0; i < member_eps_.size(); ++i) {
    const auto m = static_cast<health::PeerId>(i);
    health_->track(m, now);
    // Before any gossip arrives, judge each member against the configured
    // beacon cadence rather than the detector's generic default.
    if (opt_.beacon_interval > 0) health_->prime(m, opt_.beacon_interval);
  }
}

void McastGroup::launch_probe_round(MemberId target) {
  // Deterministic witness pick: the lowest-id members the view still
  // trusts, skipping the target itself. Suspected members may still be
  // fine witnesses (our path to them is what's suspect), so fall back to
  // them only when too few joined members exist.
  std::vector<MemberId> picks;
  const std::size_t k = health_->config().probe_k;
  for (int pass = 0; pass < 2 && picks.size() < k; ++pass) {
    for (const auto& [id, mb] : view_.members()) {
      if (picks.size() >= k) break;
      if (id == target || mb.state == MemberState::kLeft) continue;
      const bool joined = mb.state == MemberState::kJoined;
      if ((pass == 0) != joined) continue;
      picks.push_back(id);
    }
  }
  for (MemberId w : picks) {
    if (Endpoint* ep = ensure_probe_link(w, target)) {
      const std::uint8_t ping[1] = {0x50};  // 'P'
      ep->send(ping);
    }
  }
}

Endpoint* McastGroup::ensure_probe_link(MemberId witness, MemberId target) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(witness) << 16) | target;
  if (auto it = probe_links_.find(key); it != probe_links_.end()) {
    return it->second;
  }
  if (witness >= member_nodes_.size() || target >= member_nodes_.size()) {
    return nullptr;
  }
  ConnOptions c = opt_.conn;
  c.use_pa = true;
  c.cookie_preagreed = true;
  auto [we, te] =
      w_->connect(*member_nodes_[witness], *member_nodes_[target], c);
  // The target echoes whatever reaches it; the echo arriving back at the
  // witness is the probe ack — proof the target is alive even when the
  // coordinator's own path to it is down (asymmetric failure).
  te->on_deliver([te](std::span<const std::uint8_t> bytes) {
    te->send(bytes);
  });
  we->on_deliver([this, target, we](std::span<const std::uint8_t>) {
    if (health_) health_->note_probe_ack(target, we->now());
  });
  probe_links_.emplace(key, we);
  return we;
}

GroupView::MergeReport McastGroup::merge_view(
    const GroupView::ViewSnapshot& other) {
  GroupView::MergeReport r = view_.merge(other);
  health::health_metrics().merges.inc();
  if (health_) {
    const Vt now = w_->now();
    for (MemberId m : r.reprobe) {
      // Stale suspicions must not stick: re-judge every suspect in the
      // merged view with a fresh probe round instead of trusting either
      // clique's partition-era verdict. mark_suspect moves a plane-alive
      // peer into kSuspect so its very next beacon restores it (firing
      // on_restore and clearing the adopted view suspicion); without it a
      // view-suspect/plane-alive member would stay suspect forever.
      health_->track(m, now);
      health_->mark_suspect(m, now);
      launch_probe_round(m);
    }
  }
  refresh_outbound();
  update_gauges();
  return r;
}

std::uint32_t McastGroup::mcast(std::span<const std::uint8_t> payload) {
  const std::uint32_t seq = ++last_seq_;
  // One application-boundary copy builds the group frame; from here on the
  // chain is shared — clone() per member bumps refcounts, no byte copies.
  std::vector<std::uint8_t> buf(kGroupHdr + payload.size());
  store_be32(buf.data(), seq);
  store_be16(buf.data() + 4, 0);  // src: the coordinator
  store_be16(buf.data() + 6, 0);  // flags
  if (!payload.empty()) {
    std::memcpy(buf.data() + kGroupHdr, payload.data(), payload.size());
  }
  Message master = Message::with_payload(std::move(buf));

  // The coordinator trivially holds its own send: advertising head as its
  // ack lets members see how far behind they are.
  sender_out_->has_ack = true;
  sender_out_->acked = seq;
  sent_at_[seq] = w_->now();

  ++stats_.mcasts;
  group_metrics().mcasts.inc();
  for (std::size_t i = 0; i < sender_eps_.size(); ++i) {
    const Member* mb = view_.find(static_cast<MemberId>(i));
    if (mb != nullptr && mb->state == MemberState::kLeft) {
      ++stats_.skipped_left;
      continue;
    }
    ++stats_.fanout_sends;
    group_metrics().fanout_sends.inc();
    sender_eps_[i]->send_message(master.clone());
  }
  group_metrics().fanout_amplification_x1000.set(static_cast<std::int64_t>(
      stats_.fanout_sends * 1000 / stats_.mcasts));
  prune_sent_log();
  update_gauges();
  return seq;
}

void McastGroup::on_deliver(MemberId m, DeliverFn fn) {
  user_fns_.at(m) = std::move(fn);
}

void McastGroup::poll() {
  if (health_) {
    // Cross-prime the detector from the adaptive RTO: while a member's
    // gossip window is still thin, judge it against the link's measured
    // srtt + 4*rttvar instead of the generic default (real samples win as
    // soon as they exist — see PhiDetector::prime).
    for (std::size_t i = 0; i < sender_eps_.size(); ++i) {
      Stack& st = sender_eps_[i]->engine().stack();
      for (std::size_t j = 0; j < st.size(); ++j) {
        if (auto* wl = dynamic_cast<WindowLayer*>(&st.layer(j))) {
          if (wl->srtt() > 0) {
            health_->prime(i, wl->srtt() + 4 * wl->rttvar());
          }
          break;
        }
      }
    }
    // State transitions land through the hooks (which refresh outbound
    // gossip themselves).
    health_->tick(w_->now());
    update_gauges();
    return;
  }
  if (opt_.suspect_after > 0) {
    const std::size_t n = view_.sweep_suspects(w_->now(), opt_.suspect_after);
    if (n > 0) {
      group_metrics().suspects.inc(n);
      refresh_outbound();
    }
  }
  update_gauges();
}

void McastGroup::leave(MemberId m) {
  view_.leave(m);
  group_metrics().leaves.inc();
  refresh_outbound();
  update_gauges();
}

std::uint32_t McastGroup::stability_lag() const {
  const std::optional<std::uint32_t> s = view_.stability();
  return s ? last_seq_ - *s : last_seq_;
}

GroupGossipLayer* McastGroup::sender_gossip(MemberId m) {
  return find_gossip(sender_eps_.at(m)->engine().stack());
}

GroupGossipLayer* McastGroup::member_gossip(MemberId m) {
  return find_gossip(member_eps_.at(m)->engine().stack());
}

std::uint64_t McastGroup::sender_drops(DropReason r) const {
  std::uint64_t t = 0;
  for (Endpoint* e : sender_eps_) t += e->engine().stats().drops[r];
  return t;
}

std::uint64_t McastGroup::member_drops(DropReason r) const {
  std::uint64_t t = 0;
  for (Endpoint* e : member_eps_) t += e->engine().stats().drops[r];
  return t;
}

void McastGroup::refresh_outbound() {
  sender_out_->epoch = view_.epoch();
  sender_out_->digest = view_.digest();
}

void McastGroup::note_member_echo(MemberId m, std::uint16_t epoch,
                                  std::uint32_t digest) {
  const Member* mb = view_.find(m);
  if (mb != nullptr && epoch < mb->epoch_echoed) {
    group_metrics().stale_gossip.inc();
    return;
  }
  // An echo we never issued (epoch ahead, or our epoch under a different
  // digest) is the signature of a healed partition's other clique: the
  // owner should fetch its snapshot and merge_view() it.
  if (view_.divergent(epoch, digest)) {
    health::health_metrics().divergences.inc();
  }
  view_.note_echo(m, epoch, digest);
}

void McastGroup::note_member_ack(MemberId m, std::uint32_t acked) {
  view_.note_ack(m, acked);
  prune_sent_log();
  update_gauges();
}

void McastGroup::note_member_heard(MemberId m, Vt now) {
  view_.note_heard(m, now);
  if (health_) {
    // The plane is the restore authority: this arrival feeds the phi
    // window, and any restore (or post-dead rejoin) is applied through the
    // hooks — gated by flap damping, not instant.
    health_->note_heard(m, now);
    return;
  }
  const Member* mb = view_.find(m);
  if (mb != nullptr && mb->state == MemberState::kSuspect) {
    // Hearing a suspected member's gossip restores it (and bumps the
    // epoch, so the restored view propagates like any other transition).
    view_.restore(m);
    group_metrics().restores.inc();
    refresh_outbound();
  }
}

void McastGroup::on_member_deliver(MemberId m,
                                   std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kGroupHdr) return;  // not a group frame; ignore
  const std::uint32_t seq = load_be32(bytes.data());
  const MemberId src = load_be16(bytes.data() + 4);
  const std::span<const std::uint8_t> payload = bytes.subspan(kGroupHdr);

  // Per-member delivery cursor: the link is FIFO-reliable, so the latest
  // seq is the highest contiguously delivered one.
  GossipOutbound& out = *member_outs_[m];
  if (!out.has_ack || seq > out.acked) {
    out.has_ack = true;
    out.acked = seq;
  }

  ++stats_.delivered;
  group_metrics().delivers.inc();
  if (const auto it = sent_at_.find(seq); it != sent_at_.end()) {
    const Vt lat = member_eps_[m]->now() - it->second;
    const std::uint64_t ns = lat > 0 ? static_cast<std::uint64_t>(lat) : 0;
    member_hists_[m].record(ns);
    group_metrics().deliver_ns.record(ns);
  }
  if (user_fns_[m]) user_fns_[m](src, seq, payload);
}

void McastGroup::prune_sent_log() {
  // Group-stable messages need no more latency samples: every joined
  // member has delivered them. The history bound catches the no-stability
  // case (a member that never acks).
  if (const std::optional<std::uint32_t> s = view_.stability()) {
    sent_at_.erase(sent_at_.begin(), sent_at_.upper_bound(*s));
  }
  while (sent_at_.size() > opt_.history) sent_at_.erase(sent_at_.begin());
}

void McastGroup::update_gauges() {
  group_metrics().members.set(
      static_cast<std::int64_t>(view_.joined_count()));
  group_metrics().view_epoch.set(view_.epoch());
  group_metrics().stability_lag.set(stability_lag());
}

}  // namespace pa::group
