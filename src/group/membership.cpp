#include "group/membership.h"

namespace pa::group {

const char* member_state_name(MemberState s) {
  switch (s) {
    case MemberState::kJoined:
      return "joined";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kLeft:
      return "left";
  }
  return "?";
}

void GroupView::join(MemberId m, std::uint8_t priority) {
  Member& mb = members_[m];
  mb.state = MemberState::kJoined;
  mb.priority = priority;
  ++stats_.joins;
  bump_epoch();
}

void GroupView::leave(MemberId m) {
  Member* mb = find(m);
  if (mb == nullptr || mb->state == MemberState::kLeft) return;
  mb->state = MemberState::kLeft;
  ++stats_.leaves;
  bump_epoch();
}

void GroupView::suspect(MemberId m) {
  Member* mb = find(m);
  if (mb == nullptr || mb->state != MemberState::kJoined) return;
  mb->state = MemberState::kSuspect;
  ++stats_.suspects;
  bump_epoch();
}

void GroupView::restore(MemberId m) {
  Member* mb = find(m);
  if (mb == nullptr || mb->state != MemberState::kSuspect) return;
  mb->state = MemberState::kJoined;
  ++stats_.restores;
  bump_epoch();
}

Member* GroupView::find(MemberId m) {
  auto it = members_.find(m);
  return it == members_.end() ? nullptr : &it->second;
}

const Member* GroupView::find(MemberId m) const {
  auto it = members_.find(m);
  return it == members_.end() ? nullptr : &it->second;
}

std::size_t GroupView::joined_count() const {
  std::size_t n = 0;
  for (const auto& [id, mb] : members_) {
    if (mb.state == MemberState::kJoined) ++n;
  }
  return n;
}

std::uint32_t GroupView::digest() const {
  // Commutative: sum of per-member mixes. splitmix-style finalizer keeps a
  // single state flip from cancelling against another member's.
  std::uint64_t acc = 0;
  for (const auto& [id, mb] : members_) {
    std::uint64_t x = (static_cast<std::uint64_t>(id) << 16) |
                      (static_cast<std::uint64_t>(mb.state) << 8) |
                      mb.priority;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    acc += x;
  }
  std::uint32_t d = static_cast<std::uint32_t>(acc ^ (acc >> 32));
  // 0 is the "no gossip seen" sentinel on the wire; avoid emitting it.
  return d == 0 ? 1 : d;
}

std::optional<std::uint32_t> GroupView::stability() const {
  std::optional<std::uint32_t> s;
  for (const auto& [id, mb] : members_) {
    if (mb.state != MemberState::kJoined) continue;
    if (!mb.has_ack) return std::nullopt;
    s = s ? std::min(*s, mb.acked) : mb.acked;
  }
  return s;
}

bool GroupView::converged() const {
  const std::uint32_t d = digest();
  for (const auto& [id, mb] : members_) {
    if (mb.state != MemberState::kJoined) continue;
    if (mb.epoch_echoed != epoch_ || mb.digest_echoed != d) return false;
  }
  return true;
}

GroupView::ViewSnapshot GroupView::snapshot() const {
  ViewSnapshot s;
  s.id = id_;
  s.epoch = epoch_;
  s.members.reserve(members_.size());
  for (const auto& [id, mb] : members_) {
    s.members.push_back({id, mb.state, mb.priority});
  }
  return s;
}

bool GroupView::divergent(std::uint16_t echoed_epoch,
                          std::uint32_t echoed_digest) const {
  if (echoed_epoch == 0 && echoed_digest == 0) return false;  // no info
  if (echoed_epoch > epoch_) return true;  // a view we never issued
  return echoed_epoch == epoch_ && echoed_digest != digest();
}

GroupView::MergeReport GroupView::merge(const ViewSnapshot& other) {
  MergeReport r;
  // "More cautious wins" on an epoch tie: the enum is ordered
  // joined < suspect < left, so numeric max is the cautious choice. This
  // tie-break (plus max-priority) is what makes the merge commutative.
  const bool other_wins = other.epoch > epoch_;
  for (const MemberSnapshot& om : other.members) {
    auto it = members_.find(om.id);
    if (it == members_.end()) {
      Member mb;
      mb.state = om.state;
      mb.priority = om.priority;
      members_.emplace(om.id, mb);
      ++r.added;
      r.changed = true;
      continue;
    }
    Member& mine = it->second;
    if (mine.state == om.state && mine.priority == om.priority) continue;
    ++r.conflicts;
    MemberState resolved;
    std::uint8_t prio;
    if (other.epoch == epoch_) {
      resolved = std::max(mine.state, om.state);
      prio = std::max(mine.priority, om.priority);
    } else {
      resolved = other_wins ? om.state : mine.state;
      prio = other_wins ? om.priority : mine.priority;
    }
    if (mine.state != resolved || mine.priority != prio) {
      mine.state = resolved;
      mine.priority = prio;
      // The other clique's verdict supersedes our gossip bookkeeping for
      // this member: force a fresh echo/ack cycle under the merged epoch.
      mine.epoch_echoed = 0;
      mine.digest_echoed = 0;
      r.changed = true;
    }
  }
  const std::uint16_t top = std::max(epoch_, other.epoch);
  // Changed content supersedes both inputs; identical content just adopts
  // the higher epoch so the two sides stop re-triggering divergence.
  epoch_ = r.changed ? static_cast<std::uint16_t>(top + 1) : top;
  for (const auto& [id, mb] : members_) {
    if (mb.state == MemberState::kSuspect) r.reprobe.push_back(id);
  }
  ++stats_.merges;
  return r;
}

void GroupView::note_heard(MemberId m, Vt now) {
  Member* mb = find(m);
  if (mb == nullptr) return;
  mb->heard = true;
  mb->last_heard = now;
}

void GroupView::note_ack(MemberId m, std::uint32_t acked) {
  Member* mb = find(m);
  if (mb == nullptr) return;
  if (!mb->has_ack || acked > mb->acked) {
    mb->has_ack = true;
    mb->acked = acked;
  }
}

void GroupView::note_echo(MemberId m, std::uint16_t epoch,
                          std::uint32_t digest) {
  Member* mb = find(m);
  if (mb == nullptr) return;
  // Epochs only move forward; a reordered stale echo must not regress the
  // convergence bookkeeping (out-of-date gossip is harmless, paper §2.1).
  if (epoch < mb->epoch_echoed) return;
  mb->epoch_echoed = epoch;
  mb->digest_echoed = digest;
}

std::size_t GroupView::sweep_suspects(Vt now, VtDur silence) {
  std::size_t n = 0;
  for (auto& [id, mb] : members_) {
    if (mb.state != MemberState::kJoined) continue;
    // A never-heard member counts from t=0 (its join), so a fresh group is
    // not swept wholesale before the first beacons had a chance to arrive.
    const Vt reference = mb.heard ? mb.last_heard : 0;
    if (now - reference > silence) {
      mb.state = MemberState::kSuspect;
      ++stats_.suspects;
      bump_epoch();
      ++n;
    }
  }
  return n;
}

GroupView& GroupTable::ensure(GroupId id) {
  auto it = groups_.find(id);
  if (it == groups_.end()) it = groups_.emplace(id, GroupView(id)).first;
  return it->second;
}

GroupView* GroupTable::find(GroupId id) {
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : &it->second;
}

const GroupView* GroupTable::find(GroupId id) const {
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : &it->second;
}

}  // namespace pa::group
