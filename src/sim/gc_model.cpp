#include "sim/gc_model.h"

namespace pa {

VtDur GcModel::sample_pause() {
  if (pause_max_ <= pause_min_) return pause_min_;
  return pause_min_ + rng_.next_range(0, pause_max_ - pause_min_);
}

VtDur GcModel::poll() {
  bool collect = false;
  double scale = 1.0;
  switch (policy_) {
    case GcPolicy::kDisabled:
      pending_receptions_ = 0;
      pending_alloc_ = 0;
      return 0;
    case GcPolicy::kEveryReception:
      collect = pending_receptions_ > 0;
      break;
    case GcPolicy::kEveryN:
      collect = pending_receptions_ >= every_n_;
      // Deferred collection has more garbage to scan: a hiccup.
      scale = hiccup_scale_;
      break;
    case GcPolicy::kAllocThreshold:
      collect = pending_alloc_ >= alloc_threshold_;
      break;
  }
  if (!collect) return 0;
  pending_receptions_ = 0;
  pending_alloc_ = 0;
  VtDur pause = static_cast<VtDur>(static_cast<double>(sample_pause()) * scale);
  ++stats_.collections;
  stats_.total_pause += pause;
  if (pause > stats_.max_pause) stats_.max_pause = pause;
  return pause;
}

}  // namespace pa
