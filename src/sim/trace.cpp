#include "sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace pa {

void TraceRecorder::record(Vt t, std::string node, std::string label) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{t, std::move(node), std::move(label)});
}

std::string TraceRecorder::render() const {
  std::vector<TraceEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
  std::set<std::string> names;
  for (const TraceEvent& e : sorted) names.insert(e.node);
  std::vector<std::string> cols(names.begin(), names.end());

  std::string out;
  char line[192];
  std::snprintf(line, sizeof line, "%10s", "t (usec)");
  out += line;
  for (const std::string& c : cols) {
    std::snprintf(line, sizeof line, "  %-28s", c.c_str());
    out += line;
  }
  out += "\n";
  for (const TraceEvent& e : sorted) {
    std::snprintf(line, sizeof line, "%10.1f", vt_to_us(e.t));
    out += line;
    for (const std::string& c : cols) {
      if (c == e.node) {
        std::snprintf(line, sizeof line, "  %-28s", e.label.c_str());
      } else {
        std::snprintf(line, sizeof line, "  %-28s", "");
      }
      out += line;
    }
    out += "\n";
  }
  return out;
}

std::string TraceRecorder::to_chrome_json() const {
  std::string out = "[\n";
  std::map<std::string, int> tids;
  for (const TraceEvent& e : events_) {
    tids.emplace(e.node, static_cast<int>(tids.size()) + 1);
  }
  char line[256];
  bool first = true;
  for (const TraceEvent& e : events_) {
    std::snprintf(line, sizeof line,
                  "%s  {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
                  "\"ts\": %.3f, \"pid\": 1, \"tid\": %d}",
                  first ? "" : ",\n", e.label.c_str(), vt_to_us(e.t),
                  tids[e.node]);
    out += line;
    first = false;
  }
  for (const auto& [node, tid] : tids) {
    std::snprintf(line, sizeof line,
                  ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
                  "\"pid\": 1, \"tid\": %d, \"args\": {\"name\": "
                  "\"%s\"}}",
                  tid, node.c_str());
    out += line;
  }
  out += "\n]\n";
  return out;
}

}  // namespace pa
