#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace pa {

const char* partition_mode_name(PartitionMode m) {
  switch (m) {
    case PartitionMode::kBoth:
      return "both";
    case PartitionMode::kTxOnly:
      return "tx-only";
    case PartitionMode::kRxOnly:
      return "rx-only";
  }
  return "?";
}

NodeId SimNetwork::add_node(std::string name, FrameHandler handler) {
  nodes_.push_back(Node{std::move(name), std::move(handler)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SimNetwork::set_handler(NodeId id, FrameHandler handler) {
  nodes_.at(id).handler = std::move(handler);
}

void SimNetwork::set_link(NodeId from, NodeId to, LinkParams params) {
  links_[{from, to}] = params;
}

const LinkParams& SimNetwork::link(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

void SimNetwork::send(NodeId from, NodeId to, WireFrame frame, Vt depart) {
  assert(from < nodes_.size() && to < nodes_.size());
  const LinkParams& lp = link(from, to);
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (tap_) {
    const std::vector<std::uint8_t> flat = frame.flatten();
    tap_(from, to, flat, depart);
  }

  if (frame.size() > lp.mtu) {
    ++stats_.frames_oversize;
    return;
  }

  // Per-link serialization FIFO: the NIC can put only one frame on the wire
  // at a time.
  Vt& busy = link_busy_[{from, to}];
  Vt tx_start = std::max(depart, busy);
  VtDur tx_time =
      static_cast<VtDur>(static_cast<double>(frame.size()) * lp.ns_per_byte);
  busy = tx_start + tx_time;

  Vt arrive = busy + lp.propagation;

  if (paused_.count({from, to}) || partitioned(from, to)) {
    ++stats_.frames_blackholed;
    return;
  }
  if (lp.drop_every != 0 &&
      ++frame_count_[{from, to}] % lp.drop_every == 0) {
    ++stats_.frames_lost;
    return;
  }
  if (rng_->chance(lp.loss_prob)) {
    ++stats_.frames_lost;
    return;
  }
  if (lp.ge_enabled) {
    // Two-state Markov (Gilbert–Elliott) burst-loss channel. The state
    // transition is evaluated per frame offered, so burst lengths are
    // measured in frames regardless of pacing.
    bool& bad = ge_bad_[{from, to}];
    bad = bad ? !rng_->chance(lp.ge_p_bad_to_good)
              : rng_->chance(lp.ge_p_good_to_bad);
    if (rng_->chance(bad ? lp.ge_loss_bad : lp.ge_loss_good)) {
      ++stats_.frames_lost;
      return;
    }
  }
  if (lp.corrupt_prob > 0 && rng_->chance(lp.corrupt_prob) &&
      !frame.empty()) {
    ++stats_.frames_corrupted;
    const std::uint64_t bit = rng_->next_below(frame.size() * 8);
    // mutable_byte copies the slice out of a shared chunk first (CoW), so
    // the sender's retransmit buffer never observes the flip.
    *frame.mutable_byte(bit / 8) ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
  }
  if (lp.truncate_prob > 0 && rng_->chance(lp.truncate_prob) &&
      frame.size() > 1) {
    ++stats_.frames_truncated;
    frame.truncate(1 + rng_->next_below(frame.size() - 1));
  }
  if (lp.reorder_jitter > 0) {
    arrive += rng_->next_range(0, lp.reorder_jitter);
  }
  if (rng_->chance(lp.dup_prob)) {
    ++stats_.frames_duplicated;
    Vt dup_at = arrive + rng_->next_range(0, lp.propagation);
    // Deep copy: both deliveries adopt their frame's chunks and may write
    // headers in place, so they must not alias each other.
    deliver(from, to, frame.deep_copy(), dup_at);
  }
  deliver(from, to, std::move(frame), arrive);
}

void SimNetwork::set_partition(const std::string& name,
                               std::vector<NodeId> members,
                               PartitionMode mode) {
  Partition p;
  p.members.insert(members.begin(), members.end());
  p.mode = mode;
  partitions_[name] = std::move(p);
}

void SimNetwork::clear_partition(const std::string& name) {
  partitions_.erase(name);
}

bool SimNetwork::partitioned(NodeId from, NodeId to) const {
  for (const auto& [name, p] : partitions_) {
    const bool fi = p.members.count(from) != 0;
    const bool ti = p.members.count(to) != 0;
    if (fi == ti) continue;  // same side of this boundary
    switch (p.mode) {
      case PartitionMode::kBoth:
        return true;
      case PartitionMode::kTxOnly:
        if (fi) return true;  // a member transmitting out
        break;
      case PartitionMode::kRxOnly:
        if (ti) return true;  // a member receiving from outside
        break;
    }
  }
  return false;
}

void SimNetwork::deliver(NodeId from, NodeId to, WireFrame frame, Vt at) {
  // `at` can precede queue-now only if a caller passed a stale depart time;
  // clamp to preserve the event queue's monotonicity.
  Vt when = std::max(at, q_->now());
  q_->at(when, [this, from, to, frame = std::move(frame), when]() mutable {
    ++stats_.frames_delivered;
    nodes_[to].handler(from, std::move(frame), when);
  });
}

}  // namespace pa
