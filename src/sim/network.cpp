#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace pa {

NodeId SimNetwork::add_node(std::string name, FrameHandler handler) {
  nodes_.push_back(Node{std::move(name), std::move(handler)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SimNetwork::set_handler(NodeId id, FrameHandler handler) {
  nodes_.at(id).handler = std::move(handler);
}

void SimNetwork::set_link(NodeId from, NodeId to, LinkParams params) {
  links_[{from, to}] = params;
}

const LinkParams& SimNetwork::link(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

void SimNetwork::send(NodeId from, NodeId to,
                      std::vector<std::uint8_t> frame, Vt depart) {
  assert(from < nodes_.size() && to < nodes_.size());
  const LinkParams& lp = link(from, to);
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (tap_) tap_(from, to, frame, depart);

  if (frame.size() > lp.mtu) {
    ++stats_.frames_oversize;
    return;
  }

  // Per-link serialization FIFO: the NIC can put only one frame on the wire
  // at a time.
  Vt& busy = link_busy_[{from, to}];
  Vt tx_start = std::max(depart, busy);
  VtDur tx_time =
      static_cast<VtDur>(static_cast<double>(frame.size()) * lp.ns_per_byte);
  busy = tx_start + tx_time;

  Vt arrive = busy + lp.propagation;

  if (lp.drop_every != 0 &&
      ++frame_count_[{from, to}] % lp.drop_every == 0) {
    ++stats_.frames_lost;
    return;
  }
  if (rng_->chance(lp.loss_prob)) {
    ++stats_.frames_lost;
    return;
  }
  if (lp.reorder_jitter > 0) {
    arrive += rng_->next_range(0, lp.reorder_jitter);
  }
  if (rng_->chance(lp.dup_prob)) {
    ++stats_.frames_duplicated;
    Vt dup_at = arrive + rng_->next_range(0, lp.propagation);
    deliver(from, to, frame, dup_at);
  }
  deliver(from, to, std::move(frame), arrive);
}

void SimNetwork::deliver(NodeId from, NodeId to,
                         std::vector<std::uint8_t> frame, Vt at) {
  // `at` can precede queue-now only if a caller passed a stale depart time;
  // clamp to preserve the event queue's monotonicity.
  Vt when = std::max(at, q_->now());
  q_->at(when, [this, from, to, frame = std::move(frame), when]() mutable {
    ++stats_.frames_delivered;
    nodes_[to].handler(from, std::move(frame), when);
  });
}

}  // namespace pa
