// Discrete-event simulation core: a virtual clock and an event queue.
//
// This is the substitute for the paper's physical testbed (two SPARC-20s on
// ATM): all latencies — wire time, protocol CPU phases, GC pauses — are
// composed in virtual time, so experiments are exact and reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.h"

namespace pa {

class EventQueue {
 public:
  using Fn = std::function<void()>;

  Vt now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now). Events at equal
  /// times run in scheduling order (deterministic).
  void at(Vt t, Fn fn);

  /// Schedule `fn` after a delay.
  void after(VtDur d, Fn fn) { at(now_ + d, std::move(fn)); }

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains (or `max_events` dispatched).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run all events with time <= t, then set now to t.
  void run_until(Vt t);

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Ev {
    Vt t;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  Vt now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

/// A node's single CPU. All protocol work on a node is serialized through
/// its cpu: an event wanting the CPU at time t actually starts at
/// max(t, busy_until), and work performed during the event extends
/// busy_until via charge(). This is what makes deferred post-processing
/// consume real (virtual) time and cap the achievable round-trip rate
/// (paper Figures 4 and 5).
class SimCpu {
 public:
  explicit SimCpu(EventQueue& q) : q_(&q) {}

  /// Run `fn` on this CPU as soon as it is free at or after time `t`.
  /// Within `fn`, now() gives the advancing virtual instant and charge()
  /// consumes CPU time.
  void post_at(Vt t, std::function<void()> fn);

  /// Run `fn` when the CPU next becomes idle (used for post-processing).
  void post_idle(std::function<void()> fn) { post_at(now(), std::move(fn)); }

  /// Consume CPU time. If the CPU was idle (work initiated outside a
  /// post_at handler, e.g. an application send fired straight off the event
  /// queue), first catch the clock up to the present.
  void charge(VtDur d) {
    if (busy_until_ < q_->now()) busy_until_ = q_->now();
    busy_until_ += d;
    total_charged_ += d;
  }

  /// The current virtual instant as seen by running code.
  Vt now() const { return busy_until_ > q_->now() ? busy_until_ : q_->now(); }

  Vt busy_until() const { return busy_until_; }
  VtDur total_charged() const { return total_charged_; }

 private:
  EventQueue* q_;
  Vt busy_until_ = 0;
  VtDur total_charged_ = 0;
};

}  // namespace pa
