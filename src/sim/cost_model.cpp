#include "sim/cost_model.h"

namespace pa {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kBottom: return "bottom";
    case LayerKind::kWindow: return "window";
    case LayerKind::kSeq: return "seq";
    case LayerKind::kFrag: return "frag";
    case LayerKind::kMeter: return "meter";
    case LayerKind::kCustom: return "custom";
    case LayerKind::kComp: return "comp";
    case LayerKind::kCrypt: return "crypt";
    case LayerKind::kRelay: return "relay";
  }
  return "?";
}

PhaseCosts CostModel::ml_costs(LayerKind kind) const {
  switch (kind) {
    case LayerKind::kBottom: return ml_bottom;
    case LayerKind::kWindow: return ml_window;
    case LayerKind::kSeq: return ml_seq;
    case LayerKind::kFrag: return ml_frag;
    case LayerKind::kMeter: return ml_meter;
    case LayerKind::kCustom: return ml_custom;
    case LayerKind::kComp: return ml_comp;
    case LayerKind::kCrypt: return ml_crypt;
    case LayerKind::kRelay: return ml_relay;
  }
  return ml_custom;
}

VtDur CostModel::classic_send_cost(std::size_t layers) const {
  return static_cast<VtDur>(static_cast<double>(classic_send_per_layer) *
                            static_cast<double>(layers) *
                            classic_lang_multiplier);
}

VtDur CostModel::classic_deliver_cost(std::size_t layers) const {
  return static_cast<VtDur>(static_cast<double>(classic_deliver_per_layer) *
                            static_cast<double>(layers) *
                            classic_lang_multiplier);
}

CostModel CostModel::paper() { return CostModel{}; }

CostModel CostModel::zero() {
  CostModel m;
  m.pa_send_path = 0;
  m.pa_deliver_path = 0;
  m.pa_per_packed_extra = 0;
  m.pa_backlog_per_msg = 0;
  m.timer_cost = 0;
  m.ml_bottom = m.ml_window = m.ml_seq = m.ml_frag = m.ml_meter =
      m.ml_custom = m.ml_comp = m.ml_crypt = m.ml_relay = PhaseCosts{};
  m.classic_send_per_layer = 0;
  m.classic_deliver_per_layer = 0;
  m.classic_demux = 0;
  return m;
}

}  // namespace pa
