// Simulated network (the U-Net/ATM substitute).
//
// Models point-to-point links with propagation delay, per-byte serialization
// (bandwidth), an MTU, and fault injection: loss, duplication, reordering
// jitter, bit corruption, frame truncation, bursty (Gilbert–Elliott) loss
// and link pause/partition. All faults draw from the one shared seeded Rng,
// so a fixed seed reproduces the exact same fault schedule. Defaults are
// calibrated to the paper's testbed: U-Net over a Fore 140 Mbit/s ATM gave
// ~35 µs one-way latency for small messages.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "buf/wire_frame.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/types.h"

namespace pa {

using NodeId = std::uint32_t;

struct LinkParams {
  VtDur propagation = vt_ns(33'400);  // fixed one-way cost
  // Serialization: 140 Mbit/s = 17.5 MB/s => ~57.14 ns per byte.
  double ns_per_byte = 8000.0 / 140.0;
  double loss_prob = 0.0;
  double dup_prob = 0.0;
  VtDur reorder_jitter = 0;  // uniform extra delay in [0, jitter]
  std::size_t mtu = 9180;    // AAL5 default; oversize frames are dropped
  // Deterministic fault injection for A/B experiments: drop every N-th
  // frame on the link (0 = off). Applied before probabilistic loss.
  std::uint32_t drop_every = 0;
  // Bit corruption: with this probability a delivered frame has one random
  // bit flipped in flight (the receiver's checksum must catch it).
  double corrupt_prob = 0.0;
  // Truncation: with this probability a delivered frame is cut to a random
  // proper prefix (models an aborted DMA / short read).
  double truncate_prob = 0.0;
  // Bursty loss: a two-state Gilbert–Elliott channel. The link flips
  // between a good state (loss = ge_loss_good) and a bad state
  // (loss = ge_loss_bad) with the given per-frame transition
  // probabilities. Mean burst length = 1 / ge_p_bad_to_good frames.
  // Independent of — and applied after — the memoryless loss_prob above.
  bool ge_enabled = false;
  double ge_p_good_to_bad = 0.05;
  double ge_p_bad_to_good = 0.25;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.75;
};

/// How a named partition set cuts traffic crossing its boundary.
/// kTxOnly / kRxOnly model asymmetric failures (a half-dead NIC, a one-way
/// firewall rule): the set's members can still hear (resp. be heard), which
/// is exactly the case indirect probing exists for — the coordinator stops
/// hearing a member that is in fact alive.
enum class PartitionMode : std::uint8_t {
  kBoth,    // nothing crosses the boundary in either direction
  kTxOnly,  // members' transmissions to the outside are swallowed
  kRxOnly,  // members' receptions from the outside are swallowed
};

const char* partition_mode_name(PartitionMode m);

class SimNetwork {
 public:
  using FrameHandler =
      std::function<void(NodeId from, WireFrame frame, Vt at)>;

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_lost = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_oversize = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t frames_truncated = 0;
    std::uint64_t frames_blackholed = 0;  // swallowed by a paused link
  };

  SimNetwork(EventQueue& q, Rng& rng) : q_(&q), rng_(&rng) {}

  NodeId add_node(std::string name, FrameHandler handler);

  /// Replace a node's frame handler (used when the handler must capture
  /// state constructed after the node id is known).
  void set_handler(NodeId id, FrameHandler handler);

  /// Override parameters for the directed link from -> to.
  void set_link(NodeId from, NodeId to, LinkParams params);
  void set_default_link(LinkParams params) { default_link_ = params; }
  const LinkParams& link(NodeId from, NodeId to) const;

  /// Transmit a frame departing node `from` at time `depart` (callers pass
  /// their CPU's current instant). Applies serialization FIFO per directed
  /// link, then propagation, then fault injection. The frame rides the
  /// event queue as a gather list — the network never flattens it.
  void send(NodeId from, NodeId to, WireFrame frame, Vt depart);

  /// Flat-vector convenience for tests and tools: adopts the vector as a
  /// single-chunk frame (no copy).
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> frame,
            Vt depart) {
    send(from, to, WireFrame::adopt(std::move(frame)), depart);
  }

  /// Pause / unpause the directed link from -> to. A paused link silently
  /// swallows every frame (a blackhole, not an error): pausing both
  /// directions partitions the pair. Healing does not replay swallowed
  /// frames — recovery is the protocols' job.
  void set_paused(NodeId from, NodeId to, bool paused) {
    if (paused) {
      paused_.insert({from, to});
    } else {
      paused_.erase({from, to});
    }
  }
  bool paused(NodeId from, NodeId to) const {
    return paused_.count({from, to}) != 0;
  }

  // --- named partition sets ----------------------------------------------
  // First-class partitions: a named set of nodes whose boundary blackholes
  // crossing frames per the mode. Installing a name again replaces it
  // (tx-only can become both, the set can grow); clearing the name heals
  // it. Traffic between two members, or two non-members, is untouched, so
  // each clique keeps evolving its own view — the healing machinery in
  // src/group/membership.h is what reconciles them afterwards.

  void set_partition(const std::string& name, std::vector<NodeId> members,
                     PartitionMode mode = PartitionMode::kBoth);
  void clear_partition(const std::string& name);
  bool has_partition(const std::string& name) const {
    return partitions_.count(name) != 0;
  }
  std::size_t active_partitions() const { return partitions_.size(); }

  /// Would any active partition (not pause) swallow a from->to frame?
  bool partitioned(NodeId from, NodeId to) const;

  const Stats& stats() const { return stats_; }
  const std::string& node_name(NodeId id) const { return nodes_.at(id).name; }

  /// Observe every frame offered to the network (before fault injection) —
  /// a tcpdump-style tap for tests and the frame_inspector example. Taps
  /// see a flat copy: this is an observation boundary, the one place the
  /// gather list is deliberately flattened (counted in BufStats.flattens).
  using Tap = std::function<void(NodeId from, NodeId to,
                                 std::span<const std::uint8_t> frame,
                                 Vt depart)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  struct Node {
    std::string name;
    FrameHandler handler;
  };

  void deliver(NodeId from, NodeId to, WireFrame frame, Vt at);

  EventQueue* q_;
  Rng* rng_;
  std::vector<Node> nodes_;
  LinkParams default_link_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  std::map<std::pair<NodeId, NodeId>, Vt> link_busy_;  // serialization FIFO
  std::map<std::pair<NodeId, NodeId>, std::uint32_t> frame_count_;
  std::map<std::pair<NodeId, NodeId>, bool> ge_bad_;  // Gilbert–Elliott state
  std::set<std::pair<NodeId, NodeId>> paused_;
  struct Partition {
    std::set<NodeId> members;
    PartitionMode mode;
  };
  std::map<std::string, Partition> partitions_;
  Tap tap_;
  Stats stats_;
};

}  // namespace pa
