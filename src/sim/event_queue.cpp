#include "sim/event_queue.h"

#include <cassert>

namespace pa {

void EventQueue::at(Vt t, Fn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  heap_.push(Ev{t, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the handle then pop. Fn is cheap to move; top holds the only
  // reference after pop, hence take by value first.
  Ev ev = std::move(const_cast<Ev&>(heap_.top()));
  heap_.pop();
  assert(ev.t >= now_);
  now_ = ev.t;
  ++dispatched_;
  ev.fn();
  return true;
}

void EventQueue::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void EventQueue::run_until(Vt t) {
  while (!heap_.empty() && heap_.top().t <= t) step();
  if (now_ < t) now_ = t;
}

void SimCpu::post_at(Vt t, std::function<void()> fn) {
  q_->at(t, [this, fn = std::move(fn)]() mutable {
    if (q_->now() < busy_until_) {
      // CPU still busy: requeue at the moment it frees up.
      q_->at(busy_until_, std::move(fn));
      return;
    }
    busy_until_ = q_->now();
    fn();
  });
}

}  // namespace pa
