// Virtual CPU cost model.
//
// Our C++ protocol code is orders of magnitude faster than the paper's 1996
// SPARC-20 running O'Caml, so wall-clock time cannot reproduce the paper's
// latency composition. Instead, every protocol operation *executes for real*
// (correctness is genuine) while its CPU time is charged in virtual time
// from this model, calibrated to the paper's measurements:
//
//   - PA fast paths: ~25 µs each way (Figure 4's send and deliver spans).
//   - O'Caml stack post-processing: 80 µs post-send / 50 µs post-deliver for
//     the 4-layer sliding-window stack; an extra window layer adds ~15 µs to
//     each (§5).
//   - Original C Horus (classic engine): 1.5 ms round trip for the same
//     4-layer stack => ~89/90 µs per layer per direction on the critical
//     path.
//
// All parameters are plain data — benches sweep them for ablations.
#pragma once

#include "util/types.h"

namespace pa {

/// Kinds of built-in layers (used to look up per-layer phase costs).
enum class LayerKind : std::uint8_t {
  kBottom,
  kWindow,
  kSeq,
  kFrag,
  kMeter,
  kCustom,
  kComp,
  kCrypt,
  kRelay,
};

const char* layer_kind_name(LayerKind kind);

/// Virtual CPU cost of each canonical phase of one layer.
struct PhaseCosts {
  VtDur pre_send = 0;
  VtDur post_send = 0;
  VtDur pre_deliver = 0;
  VtDur post_deliver = 0;
};

struct CostModel {
  // --- the PA itself (written in C in the paper) -------------------------
  VtDur pa_send_path = vt_us(25);     // predicted hdr + send filter + handoff
  VtDur pa_deliver_path = vt_us(25);  // lookup + recv filter + predict check
  VtDur pa_per_packed_extra = vt_us(1);  // unpack cost per extra sub-message
  VtDur pa_backlog_per_msg = vt_us(10);  // enqueue+copy of a backlogged msg
  VtDur timer_cost = vt_us(3);           // firing a protocol timer

  // --- the O'Caml protocol stack (per layer instance, per phase) ---------
  PhaseCosts ml_bottom{vt_us(20), vt_us(30), vt_us(15), vt_us(15)};
  PhaseCosts ml_window{vt_us(15), vt_us(15), vt_us(15), vt_us(15)};
  PhaseCosts ml_seq{vt_us(10), vt_us(15), vt_us(10), vt_us(10)};
  PhaseCosts ml_frag{vt_us(10), vt_us(20), vt_us(10), vt_us(10)};
  PhaseCosts ml_meter{vt_us(2), vt_us(2), vt_us(2), vt_us(2)};
  PhaseCosts ml_custom{vt_us(15), vt_us(15), vt_us(15), vt_us(15)};
  // Post-paper layers (composable-stack extension). The codec work itself
  // (cipher, compressor) runs for real; these model only the per-layer
  // protocol bookkeeping an O'Caml layer would add around it.
  PhaseCosts ml_comp{vt_us(12), vt_us(10), vt_us(12), vt_us(10)};
  PhaseCosts ml_crypt{vt_us(15), vt_us(15), vt_us(15), vt_us(15)};
  PhaseCosts ml_relay{vt_us(5), vt_us(5), vt_us(5), vt_us(5)};

  // --- the classic (original C Horus) engine -----------------------------
  // Full per-layer critical-path cost per message, including the per-layer
  // header handling and buffer management the PA eliminates.
  VtDur classic_send_per_layer = vt_us(89);
  VtDur classic_deliver_per_layer = vt_us(90);
  VtDur classic_demux = vt_us(5);  // address-based connection lookup
  // Multiplier for running the classic engine in an ML-like language
  // (the FOX comparison context: SML TCP was ~9.4x C).
  double classic_lang_multiplier = 1.0;

  PhaseCosts ml_costs(LayerKind kind) const;
  VtDur classic_send_cost(std::size_t layers) const;
  VtDur classic_deliver_cost(std::size_t layers) const;

  /// Paper-calibrated defaults (the values above).
  static CostModel paper();

  /// All-zero model for unit tests that only care about behaviour.
  static CostModel zero();
};

}  // namespace pa
