// Timeline trace recorder (regenerates the paper's Figure 4 breakdown).
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace pa {

struct TraceEvent {
  Vt t;
  std::string node;
  std::string label;
};

class TraceRecorder {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Vt t, std::string node, std::string label);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Two-column timeline (one column per node name), times in µs —
  /// the shape of the paper's Figure 4.
  std::string render() const;

  /// Chrome tracing JSON (load in chrome://tracing or ui.perfetto.dev):
  /// one instant event per record, one track per node.
  std::string to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace pa
