// Timeline trace recorder (regenerates the paper's Figure 4 breakdown).
//
// This is the opt-in *Figure-4 text exporter* for simulator worlds
// (WorldConfig::trace): string-labelled events, unbounded storage, zero
// cost when disabled. The always-on production tracing facility is
// obs/trace_ring.h — compact binary span events in bounded per-thread
// rings, exported via obs::chrome_trace_json. Use that for anything on a
// hot path; use this when you want the two-column µs timeline.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace pa {

struct TraceEvent {
  Vt t;
  std::string node;
  std::string label;
};

class TraceRecorder {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Vt t, std::string node, std::string label);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Two-column timeline (one column per node name), times in µs —
  /// the shape of the paper's Figure 4.
  std::string render() const;

  /// Chrome tracing JSON (load in chrome://tracing or ui.perfetto.dev):
  /// one instant event per record, one track per node.
  std::string to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace pa
