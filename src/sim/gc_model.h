// Garbage-collection model.
//
// The paper's stack runs in O'Caml, whose stop-the-world collector produces
// pauses of 150-450 µs (average ~300 µs) and is triggered after every
// message reception in the experiments. We model the collector as a pause
// source with pluggable policy:
//
//   kEveryReception — paper's default measurement setup ("we triggered
//                     garbage collection after every message reception").
//   kEveryN         — the "only occasionally" variant of Figure 5's dashed
//                     line: higher throughput, occasional ~1 ms hiccups.
//   kAllocThreshold — collect once allocated bytes cross a threshold; with
//                     explicit message pooling (MessagePool) fresh
//                     allocations almost vanish, reproducing §6's "explicit
//                     allocation" experiment.
//   kDisabled       — the C world: no GC at all.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/types.h"

namespace pa {

enum class GcPolicy : std::uint8_t {
  kDisabled,
  kEveryReception,
  kEveryN,
  kAllocThreshold,
};

class GcModel {
 public:
  struct Stats {
    std::uint64_t collections = 0;
    VtDur total_pause = 0;
    std::uint64_t allocated_bytes = 0;
    VtDur max_pause = 0;
  };

  GcModel() = default;
  GcModel(GcPolicy policy, std::uint64_t seed) : policy_(policy), rng_(seed) {}

  GcPolicy policy() const { return policy_; }
  void set_policy(GcPolicy p) { policy_ = p; }
  void set_every_n(std::uint32_t n) { every_n_ = n; }
  void set_alloc_threshold(std::uint64_t bytes) { alloc_threshold_ = bytes; }
  void set_pause_range(VtDur lo, VtDur hi) {
    pause_min_ = lo;
    pause_max_ = hi;
  }
  /// When collections are batched (kEveryN), each pause grows with the
  /// garbage accumulated; `hiccup_scale` multiplies the base pause.
  void set_hiccup_scale(double s) { hiccup_scale_ = s; }

  void on_alloc(std::uint64_t bytes) {
    stats_.allocated_bytes += bytes;
    pending_alloc_ += bytes;
  }
  void on_reception() { ++pending_receptions_; }

  /// Called by engines at a GC point (after post-processing). Returns the
  /// pause to charge now, or 0.
  VtDur poll();

  const Stats& stats() const { return stats_; }

 private:
  VtDur sample_pause();

  GcPolicy policy_ = GcPolicy::kDisabled;
  Rng rng_{0x6c0de6c0ull};
  std::uint32_t every_n_ = 32;
  std::uint64_t alloc_threshold_ = 64 * 1024;
  VtDur pause_min_ = vt_us(150);
  VtDur pause_max_ = vt_us(450);
  double hiccup_scale_ = 3.0;  // batched collections pause ~1 ms (paper §5)

  std::uint64_t pending_alloc_ = 0;
  std::uint32_t pending_receptions_ = 0;
  Stats stats_;
};

}  // namespace pa
