// Byte-order-aware header field access (paper §2.1: "The PA provides a set
// of functions to read or write a field. The functions take byte-ordering
// into account, so that layers do not have to worry about communicating
// between heterogeneous machines.").
//
// A HeaderView binds a CompiledLayout to the in-memory header regions of one
// message. The engine points each region at its bytes (regions may be
// scattered: the PA's conn-ident region is optional on the wire), then
// layers and filters get()/set() fields through handles.
//
// Semantics: multi-byte byte-aligned fields are stored in the *wire* byte
// order (the sender's native order, advertised by the preamble's byte-order
// bit — the homogeneous fast path pays no swap). Sub-byte and unaligned
// fields use MSB-first bit order within the region's byte stream, which is
// endianness-independent.
#pragma once

#include <array>
#include <cstdint>

#include "layout/layout.h"
#include "util/byte_order.h"

namespace pa {

class HeaderView {
 public:
  static constexpr std::size_t kMaxRegions = 40;

  HeaderView() = default;
  HeaderView(const CompiledLayout* layout, Endian wire_endian)
      : layout_(layout), wire_endian_(wire_endian) {}

  void set_region(std::size_t region, std::uint8_t* base) {
    bases_.at(region) = base;
  }
  std::uint8_t* region(std::size_t r) const { return bases_.at(r); }

  const CompiledLayout* layout() const { return layout_; }
  Endian wire_endian() const { return wire_endian_; }

  std::uint64_t get(FieldHandle h) const;
  void set(FieldHandle h, std::uint64_t value);

 private:
  const CompiledLayout* layout_ = nullptr;
  Endian wire_endian_ = host_endian();
  std::array<std::uint8_t*, kMaxRegions> bases_{};
};

}  // namespace pa
