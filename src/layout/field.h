// Header field registration types (paper §2.1).
//
// Every protocol layer declares the header fields it needs with
//   handle = add_field(class, name, size_bits, offset)
// and never touches raw bytes itself. After all layers have initialized,
// the layout compiler packs the fields of each *class* into one compact
// header, ignoring layer boundaries (PA mode), or into conventional
// per-layer 4-byte-aligned headers (classic mode, the baseline).
#pragma once

#include <cstdint>
#include <string>

namespace pa {

/// The paper's four header information classes (§2.1) plus the Packing
/// Information header (§3.4), which the PA itself owns.
enum class FieldClass : std::uint8_t {
  kConnId = 0,  // never changes during a connection; sent only occasionally
  kProtoSpec,   // depends only on protocol state; predictable
  kMsgSpec,     // depends on the message itself (length, checksum, ...)
  kGossip,      // technically optional; piggybacked info such as acks
  kPacking,     // the PA's packing header (how messages were packed)
};

inline constexpr std::size_t kNumFieldClasses = 5;

const char* field_class_name(FieldClass cls);

/// Identifier of the layer that registered a field. The engines assign layer
/// ids top-down (0 = closest to the application). kEngineLayer marks fields
/// owned by the PA machinery itself (e.g. packing info), which the classic
/// baseline engine does not carry.
using LayerId = std::uint16_t;
inline constexpr LayerId kEngineLayer = 0xffff;

/// Opaque handle returned by add_field(); indexes the layout registry.
struct FieldHandle {
  static constexpr std::uint16_t kInvalid = 0xffff;
  std::uint16_t index = kInvalid;

  bool valid() const { return index != kInvalid; }
  friend bool operator==(FieldHandle a, FieldHandle b) = default;
};

/// A field as requested by a layer, before layout compilation.
struct FieldSpec {
  FieldClass cls;
  std::string name;       // need not be unique (paper §2.1)
  std::uint16_t bits;     // 1..64
  std::int32_t req_bit_offset;  // requested bit offset in class, or -1
  LayerId layer;
};

/// A field after layout compilation.
struct PlacedField {
  FieldClass cls;
  std::uint16_t region;      // wire region index (class in PA mode, layer in
                             // classic mode)
  std::uint32_t bit_offset;  // within the region, bit 0 = MSB of byte 0
  std::uint16_t bits;
  LayerId layer;
  bool aligned;              // byte-aligned power-of-two size: fast path
};

}  // namespace pa
