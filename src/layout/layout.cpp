#include "layout/layout.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>

namespace pa {

const char* field_class_name(FieldClass cls) {
  switch (cls) {
    case FieldClass::kConnId: return "conn-ident";
    case FieldClass::kProtoSpec: return "proto-spec";
    case FieldClass::kMsgSpec: return "msg-spec";
    case FieldClass::kGossip: return "gossip";
    case FieldClass::kPacking: return "packing";
  }
  return "?";
}

FieldHandle LayoutRegistry::add_field(FieldClass cls, std::string_view name,
                                      unsigned bits,
                                      std::int32_t req_bit_offset) {
  if (bits == 0 || bits > 64) {
    throw std::invalid_argument("field size must be 1..64 bits");
  }
  if (req_bit_offset < -1) {
    throw std::invalid_argument("bad requested offset");
  }
  if (fields_.size() >= FieldHandle::kInvalid) {
    throw std::runtime_error("too many fields");
  }
  FieldSpec spec;
  spec.cls = cls;
  spec.name = std::string(name);
  spec.bits = static_cast<std::uint16_t>(bits);
  spec.req_bit_offset = req_bit_offset;
  spec.layer = current_layer_;
  fields_.push_back(std::move(spec));
  return FieldHandle{static_cast<std::uint16_t>(fields_.size() - 1)};
}

namespace {

/// Bit-occupancy map for one region.
class BitMap {
 public:
  bool range_free(std::size_t off, std::size_t len) const {
    for (std::size_t i = off; i < off + len; ++i) {
      if (i < bits_.size() && bits_[i]) return false;
    }
    return true;
  }

  void mark(std::size_t off, std::size_t len) {
    if (off + len > bits_.size()) bits_.resize(off + len, false);
    for (std::size_t i = off; i < off + len; ++i) bits_[i] = true;
  }

  /// Smallest offset that is a multiple of `align` with `len` free bits.
  std::size_t find(std::size_t len, std::size_t align) const {
    for (std::size_t off = 0;; off += align) {
      if (range_free(off, len)) return off;
    }
  }

  std::size_t high_water() const {
    for (std::size_t i = bits_.size(); i > 0; --i) {
      if (bits_[i - 1]) return i;
    }
    return 0;
  }

 private:
  std::vector<bool> bits_;
};

/// Natural bit alignment for a compact-mode field: byte-power-of-two for
/// multi-byte fields (fast aligned access), bit-granular for small ones.
std::size_t compact_alignment(unsigned bits) {
  if (bits >= 64) return 64;
  if (bits >= 32) return 32;
  if (bits >= 16) return 16;
  if (bits >= 8) return 8;
  return 1;
}

bool is_fast_aligned(std::uint32_t bit_offset, std::uint16_t bits) {
  if (bit_offset % 8 != 0) return false;
  return bits == 8 || bits == 16 || bits == 32 || bits == 64;
}

}  // namespace

CompiledLayout LayoutRegistry::compile(LayoutMode mode) const {
  CompiledLayout out;
  out.mode_ = mode;
  out.placed_.resize(fields_.size());

  if (mode == LayoutMode::kCompact) {
    out.region_bytes_.assign(kNumFieldClasses, 0);
    out.region_used_bits_.assign(kNumFieldClasses, 0);
    for (std::size_t c = 0; c < kNumFieldClasses; ++c) {
      out.region_names_.push_back(
          field_class_name(static_cast<FieldClass>(c)));
    }

    std::array<BitMap, kNumFieldClasses> maps;

    // Pass 1: honor fixed-offset requests.
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      const FieldSpec& f = fields_[i];
      if (f.req_bit_offset < 0) continue;
      auto region = static_cast<std::size_t>(f.cls);
      auto off = static_cast<std::size_t>(f.req_bit_offset);
      if (!maps[region].range_free(off, f.bits)) {
        throw std::runtime_error("fixed-offset fields overlap: " + f.name);
      }
      maps[region].mark(off, f.bits);
      out.placed_[i] = PlacedField{f.cls, static_cast<std::uint16_t>(region),
                                   static_cast<std::uint32_t>(off), f.bits,
                                   f.layer,
                                   is_fast_aligned(
                                       static_cast<std::uint32_t>(off),
                                       f.bits)};
    }

    // Pass 2: place the rest largest-first at natural alignment, filling
    // gaps — this is the "minimize padding while optimizing alignment" rule.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].req_bit_offset < 0) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return fields_[a].bits > fields_[b].bits;
                     });
    for (std::size_t i : order) {
      const FieldSpec& f = fields_[i];
      auto region = static_cast<std::size_t>(f.cls);
      std::size_t align = compact_alignment(f.bits);
      std::size_t off = maps[region].find(f.bits, align);
      maps[region].mark(off, f.bits);
      out.placed_[i] = PlacedField{f.cls, static_cast<std::uint16_t>(region),
                                   static_cast<std::uint32_t>(off), f.bits,
                                   f.layer,
                                   is_fast_aligned(
                                       static_cast<std::uint32_t>(off),
                                       f.bits)};
    }

    for (std::size_t c = 0; c < kNumFieldClasses; ++c) {
      out.region_bytes_[c] = (maps[c].high_water() + 7) / 8;
    }
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out.region_used_bits_[static_cast<std::size_t>(fields_[i].cls)] +=
          fields_[i].bits;
    }
    out.build_digest_masks();
    return out;
  }

  // ---- kClassic: conventional per-layer headers --------------------------
  // Region index == layer id. Fields registered by the engine itself
  // (packing info) go to one trailing "(engine)" region that the classic
  // wire format does not carry.
  LayerId max_layer = 0;
  bool any_engine = false;
  bool any_layer = false;
  for (const FieldSpec& f : fields_) {
    if (f.layer == kEngineLayer) {
      any_engine = true;
    } else {
      any_layer = true;
      max_layer = std::max(max_layer, f.layer);
    }
  }
  const std::size_t num_layers = any_layer ? max_layer + 1u : 0u;
  const std::size_t num_regions = num_layers + (any_engine ? 1 : 0);
  out.region_bytes_.assign(num_regions, 0);
  out.region_used_bits_.assign(num_regions, 0);
  for (std::size_t r = 0; r < num_layers; ++r) {
    out.region_names_.push_back("layer " + std::to_string(r));
  }
  if (any_engine) out.region_names_.push_back("(engine)");

  std::vector<std::size_t> cursor_bytes(num_regions, 0);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const FieldSpec& f = fields_[i];
    const std::size_t region =
        f.layer == kEngineLayer ? num_layers : f.layer;
    // A 1996 C struct member: whole bytes, natural alignment capped at 4.
    std::size_t bytes = (f.bits + 7u) / 8u;
    std::size_t storage = 1;
    while (storage < bytes) storage *= 2;  // 1,2,4,8
    std::size_t align = std::min<std::size_t>(storage, 4);
    std::size_t off = (cursor_bytes[region] + align - 1) / align * align;
    cursor_bytes[region] = off + storage;
    out.placed_[i] =
        PlacedField{f.cls, static_cast<std::uint16_t>(region),
                    static_cast<std::uint32_t>(off * 8),
                    static_cast<std::uint16_t>(storage * 8), f.layer,
                    is_fast_aligned(static_cast<std::uint32_t>(off * 8),
                                    static_cast<std::uint16_t>(storage * 8))};
    out.region_used_bits_[region] += f.bits;
  }
  for (std::size_t r = 0; r < num_regions; ++r) {
    out.region_bytes_[r] = (cursor_bytes[r] + 3u) / 4u * 4u;  // pad to 4
  }
  out.build_digest_masks();
  return out;
}

void CompiledLayout::build_digest_masks() {
  digest_masks_.assign(region_bytes_.size(), {});
  for (std::size_t r = 0; r < region_bytes_.size(); ++r) {
    digest_masks_[r].assign(region_bytes_[r], 0);
  }
  for (const PlacedField& f : placed_) {
    // Connection identification is optional on the wire and message-specific
    // fields hold the checksum/length themselves: neither can be covered.
    if (f.cls == FieldClass::kConnId || f.cls == FieldClass::kMsgSpec) {
      continue;
    }
    // Classic mode never puts engine-owned fields on the wire.
    if (mode_ == LayoutMode::kClassic && f.layer == kEngineLayer) continue;
    auto& mask = digest_masks_[f.region];
    for (std::uint32_t b = f.bit_offset; b < f.bit_offset + f.bits; ++b) {
      mask[b / 8] |= static_cast<std::uint8_t>(1u << (7 - b % 8));
    }
  }
  for (auto& mask : digest_masks_) {
    bool any = false;
    for (std::uint8_t m : mask) any = any || m != 0;
    if (!any) mask.clear();  // nothing covered: digest code skips the region
  }
}

std::size_t CompiledLayout::class_bytes(FieldClass cls) const {
  if (mode_ != LayoutMode::kCompact) {
    throw std::logic_error("class_bytes only valid for compact layouts");
  }
  return region_bytes_.at(static_cast<std::size_t>(cls));
}

std::size_t CompiledLayout::total_bytes() const {
  return std::accumulate(region_bytes_.begin(), region_bytes_.end(),
                         std::size_t{0});
}

std::size_t CompiledLayout::region_padding_bits(std::size_t region) const {
  return region_bytes_.at(region) * 8 - region_used_bits_.at(region);
}

std::string CompiledLayout::describe() const {
  return describe_impl(nullptr);
}

std::string CompiledLayout::describe(const LayoutRegistry& reg) const {
  return describe_impl(&reg);
}

std::string CompiledLayout::describe_impl(const LayoutRegistry* reg) const {
  std::string out;
  char line[160];
  for (std::size_t r = 0; r < num_regions(); ++r) {
    std::snprintf(line, sizeof line, "region %zu (%s): %zu bytes, %zu pad bits\n",
                  r, region_names_[r].c_str(), region_bytes_[r],
                  region_padding_bits(r));
    out += line;
    for (std::size_t i = 0; i < placed_.size(); ++i) {
      const PlacedField& f = placed_[i];
      if (f.region != r) continue;
      const char* name =
          reg ? reg->spec(FieldHandle{static_cast<std::uint16_t>(i)})
                    .name.c_str()
              : "";
      std::snprintf(line, sizeof line,
                    "  [bit %4u, %2u bits] %-12s class=%s layer=%u%s\n",
                    f.bit_offset, f.bits, name, field_class_name(f.cls),
                    f.layer == kEngineLayer ? 999u : f.layer,
                    f.aligned ? " (aligned)" : "");
      out += line;
    }
  }
  return out;
}

}  // namespace pa
