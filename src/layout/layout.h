// The header layout compiler (paper §2.1).
//
// LayoutRegistry collects add_field() requests during stack initialization.
// compile() produces a CompiledLayout in one of two modes:
//
//  * kCompact (the PA): fields are grouped by *class* into one region per
//    class. Within a region, fixed-offset requests are honored, then the
//    remaining fields are placed largest-first at naturally aligned bit
//    offsets, filling gaps — "minimizing padding while optimizing
//    alignment", ignoring layer boundaries entirely.
//
//  * kClassic (the baseline): fields are grouped by *layer* in registration
//    order; each field is rounded up to whole bytes and aligned as a 1996 C
//    struct would be (natural alignment capped at 4 bytes), and each layer
//    header is padded to a 4-byte multiple. This reproduces the ≥12-byte
//    padding overhead the paper reports for the original Horus.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "layout/field.h"

namespace pa {

enum class LayoutMode : std::uint8_t { kCompact, kClassic };

class CompiledLayout;

class LayoutRegistry {
 public:
  /// Register a field (paper: handle = add_field(class, name, size, offset)).
  /// `bits` in [1,64]; `req_bit_offset` is a bit offset within the class
  /// header or -1 for "don't care". Throws std::invalid_argument on bad args.
  FieldHandle add_field(FieldClass cls, std::string_view name,
                        unsigned bits, std::int32_t req_bit_offset = -1);

  /// The engine sets this before calling each layer's init() so fields are
  /// attributed to the right layer for classic-mode layout.
  void set_current_layer(LayerId layer) { current_layer_ = layer; }
  LayerId current_layer() const { return current_layer_; }

  std::size_t size() const { return fields_.size(); }
  const FieldSpec& spec(FieldHandle h) const { return fields_.at(h.index); }
  const std::vector<FieldSpec>& specs() const { return fields_; }

  /// Compile all registered fields. Throws std::runtime_error if fixed
  /// offsets overlap.
  CompiledLayout compile(LayoutMode mode) const;

 private:
  std::vector<FieldSpec> fields_;
  LayerId current_layer_ = kEngineLayer;
};

class CompiledLayout {
 public:
  LayoutMode mode() const { return mode_; }

  const PlacedField& field(FieldHandle h) const {
    return placed_.at(h.index);
  }
  std::size_t num_fields() const { return placed_.size(); }
  const std::vector<PlacedField>& fields() const { return placed_; }

  /// Number of wire regions (kCompact: kNumFieldClasses; kClassic: number of
  /// layers that registered at least one field — empty layers get an empty
  /// region to keep indices aligned with layer ids).
  std::size_t num_regions() const { return region_bytes_.size(); }
  std::size_t region_bytes(std::size_t region) const {
    return region_bytes_.at(region);
  }

  /// kCompact only: bytes of the region holding a class's header.
  std::size_t class_bytes(FieldClass cls) const;

  /// Sum of all region sizes (excluding preamble / optional-ness decisions,
  /// which are wire-format concerns of the engines).
  std::size_t total_bytes() const;

  /// Diagnostics: padding bits inside a region (allocated - used).
  std::size_t region_padding_bits(std::size_t region) const;

  /// Per-region byte masks for the wide (header-covering) digest: a set bit
  /// marks a header bit the checksum protects. kConnId bits are excluded
  /// (the region is optional on the wire) and so are kMsgSpec bits (they
  /// hold the checksum itself). Regions with nothing covered yield an empty
  /// mask so digest code can skip them outright.
  const std::vector<std::uint8_t>& digest_mask(std::size_t region) const {
    return digest_masks_.at(region);
  }

  /// Human-readable layout dump for benches and debugging. The overload
  /// taking the registry annotates each field with its name.
  std::string describe() const;
  std::string describe(const LayoutRegistry& reg) const;

 private:
  friend class LayoutRegistry;

  std::string describe_impl(const LayoutRegistry* reg) const;

  void build_digest_masks();

  LayoutMode mode_ = LayoutMode::kCompact;
  std::vector<PlacedField> placed_;
  std::vector<std::size_t> region_bytes_;
  std::vector<std::size_t> region_used_bits_;
  std::vector<std::string> region_names_;
  std::vector<std::vector<std::uint8_t>> digest_masks_;
};

}  // namespace pa
