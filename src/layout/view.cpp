#include "layout/view.h"

#include <cassert>
#include <cstring>

namespace pa {
namespace {

std::uint64_t load_wire(const std::uint8_t* p, unsigned bytes, Endian order) {
  std::uint64_t v = 0;
  if (order == Endian::kBig) {
    for (unsigned i = 0; i < bytes; ++i) v = (v << 8) | p[i];
  } else {
    for (unsigned i = bytes; i > 0; --i) v = (v << 8) | p[i - 1];
  }
  return v;
}

void store_wire(std::uint8_t* p, unsigned bytes, Endian order,
                std::uint64_t v) {
  if (order == Endian::kBig) {
    for (unsigned i = bytes; i > 0; --i) {
      p[i - 1] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  } else {
    for (unsigned i = 0; i < bytes; ++i) {
      p[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

}  // namespace

std::uint64_t HeaderView::get(FieldHandle h) const {
  assert(layout_ != nullptr);
  const PlacedField& f = layout_->field(h);
  const std::uint8_t* base = bases_[f.region];
  assert(base != nullptr && "region not bound");
  if (f.aligned) {
    return load_wire(base + f.bit_offset / 8, f.bits / 8, wire_endian_);
  }
  // Generic MSB-first bit extraction.
  std::uint64_t v = 0;
  for (unsigned i = 0; i < f.bits; ++i) {
    std::uint32_t pos = f.bit_offset + i;
    std::uint8_t byte = base[pos / 8];
    v = (v << 1) | ((byte >> (7 - pos % 8)) & 1u);
  }
  return v;
}

void HeaderView::set(FieldHandle h, std::uint64_t value) {
  assert(layout_ != nullptr);
  const PlacedField& f = layout_->field(h);
  std::uint8_t* base = bases_[f.region];
  assert(base != nullptr && "region not bound");
  if (f.bits < 64) {
    assert(value < (1ull << f.bits) && "value does not fit field");
  }
  if (f.aligned) {
    store_wire(base + f.bit_offset / 8, f.bits / 8, wire_endian_, value);
    return;
  }
  for (unsigned i = 0; i < f.bits; ++i) {
    std::uint32_t pos = f.bit_offset + i;
    std::uint8_t bit = (value >> (f.bits - 1 - i)) & 1u;
    std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - pos % 8));
    if (bit) {
      base[pos / 8] |= mask;
    } else {
      base[pos / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }
}

}  // namespace pa
