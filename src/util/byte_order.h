// Byte-order utilities.
//
// The PA wire format carries a byte-ordering bit in its preamble (paper
// §2.2): a sender writes multi-byte header fields in its *native* order and
// advertises that order, so the common homogeneous case pays no swap on
// either side. These helpers implement the swap for the heterogeneous case
// and let tests emulate a big-endian peer on a little-endian host.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace pa {

enum class Endian : std::uint8_t {
  kBig = 0,
  kLittle = 1,
};

/// Byte order of the machine we are running on.
constexpr Endian host_endian() {
  return std::endian::native == std::endian::little ? Endian::kLittle
                                                    : Endian::kBig;
}

constexpr std::uint16_t bswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

constexpr std::uint64_t bswap64(std::uint64_t v) {
  return (static_cast<std::uint64_t>(bswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         bswap32(static_cast<std::uint32_t>(v >> 32));
}

/// Swap the low `bytes` bytes of `v` (bytes in {1,2,4,8}).
constexpr std::uint64_t bswap_n(std::uint64_t v, unsigned bytes) {
  switch (bytes) {
    case 1: return v;
    case 2: return bswap16(static_cast<std::uint16_t>(v));
    case 4: return bswap32(static_cast<std::uint32_t>(v));
    default: return bswap64(v);
  }
}

// Fixed big-endian loads/stores for canonical on-wire structures (the
// preamble and packing list are always big-endian regardless of the
// byte-order bit, so any receiver can parse them before knowing the
// sender's endianness).

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

}  // namespace pa
