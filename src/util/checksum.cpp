#include "util/checksum.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define PA_CRC32C_X86 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define PA_CRC32C_ARM 1
#endif

namespace pa {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

// All update functions take and return the *raw* CRC state (no final xor),
// so streaming and one-shot callers compose them identically.
std::uint32_t crc32c_update_sw(std::uint32_t crc, const std::uint8_t* p,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ p[i]) & 0xffu];
  }
  return crc;
}

#if defined(PA_CRC32C_X86)
// SSE4.2 CRC32 computes the same reflected Castagnoli CRC as the table.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_update_hw(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n > 0) {
    c32 = _mm_crc32_u8(c32, *p);
    ++p;
    --n;
  }
  return c32;
}
#elif defined(PA_CRC32C_ARM)
std::uint32_t crc32c_update_hw(std::uint32_t crc, const std::uint8_t* p,
                               std::size_t n) {
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p);
    ++p;
    --n;
  }
  return crc;
}
#endif

using CrcUpdateFn = std::uint32_t (*)(std::uint32_t, const std::uint8_t*,
                                      std::size_t);

CrcUpdateFn pick_crc32c_update() {
#if defined(PA_CRC32C_X86)
  if (__builtin_cpu_supports("sse4.2")) return crc32c_update_hw;
#elif defined(PA_CRC32C_ARM)
  // Compiled in only when the target guarantees the CRC32 extension.
  return crc32c_update_hw;
#endif
  return crc32c_update_sw;
}

const CrcUpdateFn kCrc32cUpdate = pick_crc32c_update();

}  // namespace

std::uint32_t crc32c_sw(std::span<const std::uint8_t> data) {
  return crc32c_update_sw(0xffffffffu, data.data(), data.size()) ^ 0xffffffffu;
}

bool crc32c_hw_available() { return kCrc32cUpdate != crc32c_update_sw; }

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
  return kCrc32cUpdate(0xffffffffu, data.data(), data.size()) ^ 0xffffffffu;
}

std::uint32_t fletcher32(std::span<const std::uint8_t> data) {
  // Operates on 16-bit words, zero-padding an odd trailing byte.
  std::uint32_t sum1 = 0xffff;
  std::uint32_t sum2 = 0xffff;
  std::size_t i = 0;
  while (i + 1 < data.size()) {
    std::uint32_t word =
        static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    i += 2;
    sum1 += word;
    sum2 += sum1;
    if ((i & 0x1ff) == 0) {  // fold periodically to avoid overflow
      sum1 = (sum1 & 0xffff) + (sum1 >> 16);
      sum2 = (sum2 & 0xffff) + (sum2 >> 16);
    }
  }
  if (i < data.size()) {
    std::uint32_t word = static_cast<std::uint32_t>(data[i]) << 8;
    sum1 += word;
    sum2 += sum1;
  }
  sum1 = (sum1 & 0xffff) + (sum1 >> 16);
  sum2 = (sum2 & 0xffff) + (sum2 >> 16);
  sum1 = (sum1 & 0xffff) + (sum1 >> 16);
  sum2 = (sum2 & 0xffff) + (sum2 >> 16);
  return (sum2 << 16) | sum1;
}

std::uint16_t inet_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  while (i + 1 < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    i += 2;
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint8_t xor8(std::span<const std::uint8_t> data) {
  std::uint8_t x = 0;
  for (std::uint8_t b : data) x ^= b;
  return x;
}

std::uint64_t digest(DigestKind kind, std::span<const std::uint8_t> data) {
  switch (kind) {
    case DigestKind::kCrc32c: return crc32c(data);
    case DigestKind::kFletcher32: return fletcher32(data);
    case DigestKind::kSum16: return inet_checksum(data);
    case DigestKind::kXor8: return xor8(data);
  }
  return 0;
}

const char* digest_kind_name(DigestKind kind) {
  switch (kind) {
    case DigestKind::kCrc32c: return "crc32c";
    case DigestKind::kFletcher32: return "fletcher32";
    case DigestKind::kSum16: return "sum16";
    case DigestKind::kXor8: return "xor8";
  }
  return "?";
}

DigestStream::DigestStream(DigestKind kind) : kind_(kind) {}

void DigestStream::update(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  switch (kind_) {
    case DigestKind::kCrc32c:
      crc_ = kCrc32cUpdate(crc_, data.data(), data.size());
      return;
    case DigestKind::kXor8:
      for (std::uint8_t b : data) x_ ^= b;
      return;
    case DigestKind::kFletcher32: {
      std::size_t i = 0;
      if (have_carry_) {
        // Complete the 16-bit word split across the span boundary.
        sum1_ += static_cast<std::uint32_t>(carry_) << 8 | data[0];
        sum2_ += sum1_;
        paired_ += 2;
        if ((paired_ & 0x1ff) == 0) {
          sum1_ = (sum1_ & 0xffff) + (sum1_ >> 16);
          sum2_ = (sum2_ & 0xffff) + (sum2_ >> 16);
        }
        have_carry_ = false;
        i = 1;
      }
      while (i + 1 < data.size()) {
        sum1_ += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
        sum2_ += sum1_;
        i += 2;
        paired_ += 2;
        if ((paired_ & 0x1ff) == 0) {
          sum1_ = (sum1_ & 0xffff) + (sum1_ >> 16);
          sum2_ = (sum2_ & 0xffff) + (sum2_ >> 16);
        }
      }
      if (i < data.size()) {
        carry_ = data[i];
        have_carry_ = true;
      }
      return;
    }
    case DigestKind::kSum16: {
      std::size_t i = 0;
      if (have_carry_) {
        isum_ += static_cast<std::uint32_t>(carry_) << 8 | data[0];
        have_carry_ = false;
        i = 1;
      }
      while (i + 1 < data.size()) {
        isum_ += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
        i += 2;
      }
      if (i < data.size()) {
        carry_ = data[i];
        have_carry_ = true;
      }
      return;
    }
  }
}

std::uint64_t DigestStream::finish() {
  switch (kind_) {
    case DigestKind::kCrc32c:
      return crc_ ^ 0xffffffffu;
    case DigestKind::kXor8:
      return x_;
    case DigestKind::kFletcher32: {
      if (have_carry_) {
        // The genuinely odd trailing byte: added high, no periodic fold —
        // exactly what the one-shot function does after its main loop.
        sum1_ += static_cast<std::uint32_t>(carry_) << 8;
        sum2_ += sum1_;
        have_carry_ = false;
      }
      sum1_ = (sum1_ & 0xffff) + (sum1_ >> 16);
      sum2_ = (sum2_ & 0xffff) + (sum2_ >> 16);
      sum1_ = (sum1_ & 0xffff) + (sum1_ >> 16);
      sum2_ = (sum2_ & 0xffff) + (sum2_ >> 16);
      return (sum2_ << 16) | sum1_;
    }
    case DigestKind::kSum16: {
      if (have_carry_) {
        isum_ += static_cast<std::uint32_t>(carry_) << 8;
        have_carry_ = false;
      }
      while (isum_ >> 16) isum_ = (isum_ & 0xffff) + (isum_ >> 16);
      return static_cast<std::uint16_t>(~isum_ & 0xffff);
    }
  }
  return 0;
}

}  // namespace pa
