#include "util/checksum.h"

#include <array>

namespace pa {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t b : data) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ b) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t fletcher32(std::span<const std::uint8_t> data) {
  // Operates on 16-bit words, zero-padding an odd trailing byte.
  std::uint32_t sum1 = 0xffff;
  std::uint32_t sum2 = 0xffff;
  std::size_t i = 0;
  while (i + 1 < data.size()) {
    std::uint32_t word =
        static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    i += 2;
    sum1 += word;
    sum2 += sum1;
    if ((i & 0x1ff) == 0) {  // fold periodically to avoid overflow
      sum1 = (sum1 & 0xffff) + (sum1 >> 16);
      sum2 = (sum2 & 0xffff) + (sum2 >> 16);
    }
  }
  if (i < data.size()) {
    std::uint32_t word = static_cast<std::uint32_t>(data[i]) << 8;
    sum1 += word;
    sum2 += sum1;
  }
  sum1 = (sum1 & 0xffff) + (sum1 >> 16);
  sum2 = (sum2 & 0xffff) + (sum2 >> 16);
  sum1 = (sum1 & 0xffff) + (sum1 >> 16);
  sum2 = (sum2 & 0xffff) + (sum2 >> 16);
  return (sum2 << 16) | sum1;
}

std::uint16_t inet_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  while (i + 1 < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    i += 2;
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint8_t xor8(std::span<const std::uint8_t> data) {
  std::uint8_t x = 0;
  for (std::uint8_t b : data) x ^= b;
  return x;
}

std::uint64_t digest(DigestKind kind, std::span<const std::uint8_t> data) {
  switch (kind) {
    case DigestKind::kCrc32c: return crc32c(data);
    case DigestKind::kFletcher32: return fletcher32(data);
    case DigestKind::kSum16: return inet_checksum(data);
    case DigestKind::kXor8: return xor8(data);
  }
  return 0;
}

const char* digest_kind_name(DigestKind kind) {
  switch (kind) {
    case DigestKind::kCrc32c: return "crc32c";
    case DigestKind::kFletcher32: return "fletcher32";
    case DigestKind::kSum16: return "sum16";
    case DigestKind::kXor8: return "xor8";
  }
  return "?";
}

}  // namespace pa
