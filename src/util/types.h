// Core scalar types shared across the library.
//
// All simulated clocks in this project run on virtual time expressed in
// nanoseconds. The paper reports everything in microseconds; helpers below
// convert both ways so benches can print paper-comparable numbers.
#pragma once

#include <cstdint>

namespace pa {

/// Virtual time in nanoseconds since simulation start.
using Vt = std::int64_t;

/// Virtual duration in nanoseconds.
using VtDur = std::int64_t;

constexpr VtDur vt_ns(std::int64_t n) { return n; }
constexpr VtDur vt_us(std::int64_t n) { return n * 1000; }
constexpr VtDur vt_ms(std::int64_t n) { return n * 1000 * 1000; }
constexpr VtDur vt_s(std::int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double vt_to_us(VtDur d) { return static_cast<double>(d) / 1e3; }
constexpr double vt_to_ms(VtDur d) { return static_cast<double>(d) / 1e6; }
constexpr double vt_to_s(VtDur d) { return static_cast<double>(d) / 1e9; }

}  // namespace pa
