#include "util/rng.h"

#include <bit>

namespace pa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  s0_ = splitmix64(x);
  s1_ = splitmix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is a fixed point
}

std::uint64_t Rng::next() {
  const std::uint64_t a = s0_;
  std::uint64_t b = s1_;
  const std::uint64_t result = std::rotl(a + b, 17) + a;
  b ^= a;
  s0_ = std::rotl(a, 49) ^ b ^ (b << 21);
  s1_ = std::rotl(b, 28);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits → [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace pa
