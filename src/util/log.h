// Minimal leveled logging to stderr.
//
// Off by default (kWarn); tests and examples can raise verbosity. Logging is
// intentionally simple — this library's hot paths must never log.
#pragma once

#include <sstream>
#include <string>

namespace pa {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);

void log_write(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pa

#define PA_LOG(level)                                  \
  if (::pa::LogLevel::level < ::pa::log_threshold()) { \
  } else                                               \
    ::pa::detail::LogLine(::pa::LogLevel::level)
