// Hexdump helper for debugging wire frames and header layouts.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace pa {

/// Classic 16-bytes-per-row hexdump with an ASCII gutter.
std::string hexdump(std::span<const std::uint8_t> data);

}  // namespace pa
