// A statistics counter safe for concurrent writers and readers.
//
// The deferred-work runtime (src/rt/) moves engine post-processing onto
// worker threads, so the EngineStats / Router::Stats counters are bumped by
// a worker while the owner thread (or a report renderer) reads them. These
// counters are monotonic telemetry, not synchronization: relaxed atomics
// are exactly right — no ordering, no torn reads, negligible cost on the
// inline (single-threaded, simulated) paths.
//
// The class is a drop-in for the plain std::uint64_t fields it replaces:
// ++, +=, = and implicit conversion all work at existing call sites.
// Copying snapshots the current value so whole-struct stats snapshots keep
// working.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace pa {

class StatCounter {
 public:
  StatCounter() = default;
  StatCounter(std::uint64_t v) : v_(v) {}
  StatCounter(const StatCounter& o) : v_(o.load()) {}
  StatCounter& operator=(const StatCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator std::uint64_t() const { return load(); }

  StatCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t operator++(int) {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  StatCounter& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

inline std::ostream& operator<<(std::ostream& os, const StatCounter& c) {
  return os << c.load();
}

}  // namespace pa
