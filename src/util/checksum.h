// Message digests available to packet-filter DIGEST instructions.
//
// The paper's packet filter has a DIGEST op carrying a function pointer
// (Table 2). We expose a small closed set of digest kinds instead of raw
// pointers so that filter programs remain serializable and statically
// checkable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pa {

enum class DigestKind : std::uint8_t {
  kCrc32c,      // Castagnoli CRC-32 (software table implementation)
  kFletcher32,  // Fletcher-32 over bytes
  kSum16,       // 16-bit ones-complement Internet checksum
  kXor8,        // trivial xor of all bytes (cheap, for tests)
};

std::uint32_t crc32c(std::span<const std::uint8_t> data);
std::uint32_t fletcher32(std::span<const std::uint8_t> data);
std::uint16_t inet_checksum(std::span<const std::uint8_t> data);
std::uint8_t xor8(std::span<const std::uint8_t> data);

/// Dispatch by kind; result is zero-extended to 64 bits for the filter stack.
std::uint64_t digest(DigestKind kind, std::span<const std::uint8_t> data);

const char* digest_kind_name(DigestKind kind);

}  // namespace pa
