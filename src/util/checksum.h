// Message digests available to packet-filter DIGEST instructions.
//
// The paper's packet filter has a DIGEST op carrying a function pointer
// (Table 2). We expose a small closed set of digest kinds instead of raw
// pointers so that filter programs remain serializable and statically
// checkable.
//
// Two implementation notes for the zero-copy message path:
//   - DigestStream computes any digest incrementally over a sequence of
//     spans (a chained payload) with bit-exact equivalence to the one-shot
//     functions over the concatenated bytes — including Fletcher's periodic
//     fold points and the odd-trailing-byte rules, which are carried across
//     span boundaries.
//   - crc32c() dispatches at runtime to the CPU's CRC32 instructions
//     (SSE4.2 on x86, the CRC32 extension on ARMv8) when available; the
//     software table implementation remains both the fallback and the
//     oracle the hardware path is tested against (crc32c_sw()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pa {

enum class DigestKind : std::uint8_t {
  kCrc32c,      // Castagnoli CRC-32 (hardware-accelerated when possible)
  kFletcher32,  // Fletcher-32 over bytes
  kSum16,       // 16-bit ones-complement Internet checksum
  kXor8,        // trivial xor of all bytes (cheap, for tests)
};

std::uint32_t crc32c(std::span<const std::uint8_t> data);
std::uint32_t fletcher32(std::span<const std::uint8_t> data);
std::uint16_t inet_checksum(std::span<const std::uint8_t> data);
std::uint8_t xor8(std::span<const std::uint8_t> data);

/// The pure software-table CRC32C — the oracle the dispatched path must
/// agree with byte-for-byte.
std::uint32_t crc32c_sw(std::span<const std::uint8_t> data);

/// Whether crc32c() is using a hardware CRC instruction on this machine.
bool crc32c_hw_available();

/// Dispatch by kind; result is zero-extended to 64 bits for the filter stack.
std::uint64_t digest(DigestKind kind, std::span<const std::uint8_t> data);

const char* digest_kind_name(DigestKind kind);

/// Incremental digest over a sequence of byte spans. For every kind,
///   DigestStream ds(k); ds.update(a); ds.update(b); ds.finish()
/// equals digest(k, a ++ b) exactly, for any split — this is what lets the
/// packet filters checksum a chained payload without flattening it.
class DigestStream {
 public:
  explicit DigestStream(DigestKind kind);

  void update(std::span<const std::uint8_t> data);

  /// Final digest value; the stream must not be updated afterwards.
  std::uint64_t finish();

  DigestKind kind() const { return kind_; }

 private:
  DigestKind kind_;
  // CRC32C: raw (pre-final-xor) state.
  std::uint32_t crc_ = 0xffffffffu;
  // Fletcher-32: running sums, plus the absolute paired-byte index so the
  // periodic overflow fold lands at the same offsets as the one-shot code.
  std::uint32_t sum1_ = 0xffff;
  std::uint32_t sum2_ = 0xffff;
  std::uint64_t paired_ = 0;
  // Internet checksum: plain 64-bit accumulator (folded at finish).
  std::uint64_t isum_ = 0;
  std::uint8_t x_ = 0;
  // A byte left over when a span ends mid-16-bit-word; completed by the
  // next span or treated as the odd trailing byte at finish().
  std::uint8_t carry_ = 0;
  bool have_carry_ = false;
};

}  // namespace pa
