#include "util/log.h"

#include <cstdio>

namespace pa {
namespace {

LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return g_threshold; }

void set_log_threshold(LogLevel level) { g_threshold = level; }

void log_write(LogLevel level, const std::string& msg) {
  if (level < g_threshold) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace pa
