// Deterministic pseudo-random number generation.
//
// Simulations must be reproducible run-to-run, so every stochastic component
// (loss injection, GC pause sampling, cookie allocation in tests) draws from
// an explicitly seeded Rng rather than any global source.
#pragma once

#include <cstdint>

namespace pa {

/// xoroshiro128++ seeded via splitmix64. Small, fast, and good enough for
/// simulation; NOT cryptographic (cookies in a real deployment would want a
/// CSPRNG — documented limitation, mirrors the paper's "chosen at random").
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (bound > 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool chance(double p);

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace pa
