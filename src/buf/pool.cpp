#include "buf/pool.h"

#include <cstring>

namespace pa {

Message MessagePool::acquire(std::size_t headroom,
                             std::size_t payload_capacity) {
  ++stats_.acquires;
  const std::size_t want = headroom + payload_capacity;
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i].size() >= want) {
      std::vector<std::uint8_t> store = std::move(cache_[i]);
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(i));
      return Message::from_storage(std::move(store), headroom);
    }
  }
  ++stats_.fresh_allocations;
  stats_.bytes_allocated += want;
  return Message::from_storage(std::vector<std::uint8_t>(want), headroom);
}

Message MessagePool::acquire_with_payload(
    std::span<const std::uint8_t> payload, std::size_t headroom) {
  Message m = acquire(headroom, payload.size());
  m.append_payload(payload);
  return m;
}

void MessagePool::release(Message&& msg) {
  ++stats_.releases;
  if (cache_.size() >= max_cached_) return;  // let it free
  cache_.push_back(std::move(msg).take_storage());
}

}  // namespace pa
