#include "buf/pool.h"

#include <algorithm>
#include <cstring>

namespace pa {

Message MessagePool::acquire(std::size_t headroom,
                             std::size_t payload_capacity) {
  ++stats_.acquires;
  sweep_pending();
  const std::size_t want = headroom + payload_capacity;
  bool hit = false;
  for (std::size_t i = 0; i < vsizes_.size(); ++i) {
    if (vsizes_[i] >= want) {
      vsizes_.erase(vsizes_.begin() + static_cast<std::ptrdiff_t>(i));
      hit = true;
      break;
    }
  }
  if (!hit) {
    ++stats_.fresh_allocations;
    stats_.bytes_allocated += want;
  }
  ChunkRef head = take_exact(headroom);
  if (!head) head = ChunkRef::make(headroom);
  Message m(Message::FromPool{}, std::move(head));
  m.pool_vsize_ = want;
  return m;
}

Message MessagePool::acquire_with_payload(
    std::span<const std::uint8_t> payload, std::size_t headroom) {
  Message m = acquire(headroom, payload.size());
  if (!payload.empty()) {
    // Recycle a payload chunk when one fits; the copy itself is the ingest
    // copy across the application boundary (same as Message::append_payload).
    ChunkRef c = take_at_least(payload.size());
    if (!c) c = ChunkRef::make(payload.size());
    std::memcpy(c->data.data(), payload.data(), payload.size());
    buf_stats().ingest_copies.fetch_add(1, std::memory_order_relaxed);
    buf_stats().ingest_bytes.fetch_add(payload.size(),
                                       std::memory_order_relaxed);
    m.chain_.push_back(Slice{std::move(c), 0, payload.size()});
    m.plen_ = payload.size();
  }
  return m;
}

void MessagePool::release(Message&& msg) {
  ++stats_.releases;
  stats_.headroom_regrow += msg.regrows();
  if (vsizes_.size() < max_cached_) {
    vsizes_.push_back(std::max(msg.capacity(), msg.pool_vsize_));
  }

  // Harvest the message's chunks. The same chunk can back both the header
  // region and the first payload slice (adopted wire frames), so dedupe
  // before testing uniqueness — only references *outside* this message
  // should keep a chunk out of the cache.
  ChunkRef refs[8];
  std::size_t n = 0;
  auto add = [&](ChunkRef&& r) {
    if (!r) return;
    for (std::size_t i = 0; i < n; ++i) {
      if (refs[i].get() == r.get()) {
        r.reset();
        return;
      }
    }
    if (n < 8) {
      refs[n++] = std::move(r);
    } else {
      r.reset();  // long chains: just drop the ref, refcount frees it
    }
  };
  add(std::move(msg.head_));
  for (Slice& s : msg.chain_) add(std::move(s.chunk));
  msg.chain_.clear();
  msg.plen_ = 0;
  msg.hstart_ = msg.hend_ = msg.hdr_acct_ = 0;

  sweep_pending();
  for (std::size_t i = 0; i < n; ++i) {
    if (refs[i]->kernel_buf) {
      // Kernel receive buffers belong to the real loop's recycler, which is
      // itself waiting for uniqueness; caching or parking the ref here would
      // deadlock both recyclers at refcount 2 (see chunk.h).
      refs[i].reset();
    } else if (refs[i]->unique()) {
      stash(std::move(refs[i]));
    } else if (pending_.size() < kMaxPending) {
      pending_.push_back(std::move(refs[i]));
    } else {
      refs[i].reset();
    }
  }
}

void MessagePool::sweep_pending() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i]->unique()) {
      stash(std::move(pending_[i]));
    } else {
      pending_[kept++] = std::move(pending_[i]);
    }
  }
  pending_.resize(kept);
}

void MessagePool::stash(ChunkRef&& c) {
  if (cache_.size() >= max_cached_ * 2) {
    c.reset();
    return;
  }
  cache_.push_back(std::move(c));
}

ChunkRef MessagePool::take_exact(std::size_t size) {
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i]->data.size() == size) {
      ChunkRef c = std::move(cache_[i]);
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(i));
      buf_stats().chunks_recycled.fetch_add(1, std::memory_order_relaxed);
      return c;
    }
  }
  return ChunkRef();
}

ChunkRef MessagePool::take_at_least(std::size_t size) {
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i]->data.size() >= size) {
      ChunkRef c = std::move(cache_[i]);
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(i));
      buf_stats().chunks_recycled.fetch_add(1, std::memory_order_relaxed);
      return c;
    }
  }
  return ChunkRef();
}

}  // namespace pa
