#include "buf/message.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pa {

namespace {

void note_ingest(std::size_t n) {
  buf_stats().ingest_copies.fetch_add(1, std::memory_order_relaxed);
  buf_stats().ingest_bytes.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

Message::Message(std::size_t headroom)
    : head_(ChunkRef::make(headroom)),
      hstart_(headroom),
      hend_(headroom),
      hdr_acct_(headroom) {}

Message::Message(FromPool, ChunkRef head) : head_(std::move(head)) {
  hstart_ = hend_ = hdr_acct_ = head_ ? head_->data.size() : 0;
}

Message Message::with_payload(std::span<const std::uint8_t> payload,
                              std::size_t headroom) {
  Message m(headroom);
  m.append_payload(payload);
  return m;
}

Message Message::with_payload(std::vector<std::uint8_t>&& payload,
                              std::size_t headroom) {
  Message m(headroom);
  const std::size_t n = payload.size();
  if (n > 0) {
    m.chain_.push_back(Slice{ChunkRef::adopt_vector(std::move(payload)), 0, n});
    m.plen_ = n;
  }
  return m;
}

void Message::replace_payload(std::vector<std::uint8_t>&& data) {
  const std::size_t n = data.size();
  chain_.clear();
  plen_ = n;
  if (n > 0) {
    chain_.push_back(Slice{ChunkRef::adopt_vector(std::move(data)), 0, n});
  }
}

Message Message::from_wire(std::span<const std::uint8_t> frame) {
  Message m(FromPool{}, ChunkRef());
  if (!frame.empty()) {
    note_ingest(frame.size());
    ChunkRef c = ChunkRef::make(frame.size());
    std::memcpy(c->data.data(), frame.data(), frame.size());
    m.plen_ = frame.size();
    m.chain_.push_back(Slice{std::move(c), 0, m.plen_});
  }
  return m;
}

Message Message::from_wire(WireFrame&& frame) {
  Message m(FromPool{}, ChunkRef());
  m.plen_ = frame.size();
  m.chain_ = std::move(frame).take_slices();
  return m;
}

Message Message::clone() const {
  Message m(FromPool{}, ChunkRef::make(hdr_acct_));
  m.cb = cb;
  const std::size_t hl = header_len();
  if (hl > 0) {
    // The header bytes are duplicated (they are small and the clone will be
    // patched — retransmit flag, refreshed checksum — without disturbing
    // in-flight frames); the payload chain below is shared by reference.
    // Header duplication is intentionally not counted in memcpy_*: those
    // counters track payload copies.
    assert(hdr_acct_ >= hl);
    m.hstart_ = hdr_acct_ - hl;
    std::memcpy(m.head_->data.data() + m.hstart_, front(), hl);
  }
  m.chain_ = chain_;
  m.plen_ = plen_;
  // The whole payload chain was shared by reference: account the clone (and
  // the bytes that did NOT move) so fanout benches can show one logical send
  // reaching N destinations with O(1) byte copies.
  buf_stats().chain_clones.fetch_add(1, std::memory_order_relaxed);
  buf_stats().chain_clone_bytes_shared.fetch_add(plen_,
                                                 std::memory_order_relaxed);
  return m;
}

std::uint8_t* Message::push(std::size_t n) {
  if (n == 0) return front();
  if (!head_) {
    const std::size_t size = std::max(kDefaultHeadroom, n);
    head_ = ChunkRef::make(size);
    hstart_ = hend_ = size;
    hdr_acct_ += size;
    head_owned_ = true;
  }
  const std::size_t hl = header_len();
  if (!head_owned_) {
    // Header bytes shared with an adopted wire frame: copy-on-write into a
    // private chunk before the first prepend.
    const std::size_t size = std::max({hdr_acct_, hl + n, kDefaultHeadroom});
    ChunkRef priv = ChunkRef::make(size);
    if (hl > 0) std::memcpy(priv->data.data() + size - hl, front(), hl);
    head_ = std::move(priv);
    hstart_ = size - hl;
    hend_ = size;
    hdr_acct_ = size;
    head_owned_ = true;
    buf_stats().cow_copies.fetch_add(1, std::memory_order_relaxed);
  }
  if (hstart_ < n) {
    // Headroom exhausted: regrow geometrically so a stack that repeatedly
    // outgrows its headroom amortises to O(1) copies per byte. Only the
    // (small) header region is copied — the payload chain never moves.
    const std::size_t old = head_->data.size();
    const std::size_t size = std::max({old * 2, hl + n, kDefaultHeadroom});
    ChunkRef bigger = ChunkRef::make(size);
    if (hl > 0) std::memcpy(bigger->data.data() + size - hl, front(), hl);
    head_ = std::move(bigger);
    hstart_ = size - hl;
    hend_ = size;
    hdr_acct_ = size;
    ++regrows_;
    buf_stats().headroom_regrows.fetch_add(1, std::memory_order_relaxed);
  }
  hstart_ -= n;
  return front();
}

void Message::pop(std::size_t n) {
  assert(n <= header_len() && "pop crosses into payload");
  hstart_ += n;
}

void Message::set_header_len(std::size_t n) {
  assert(header_len() == 0 && "header region already established");
  if (n == 0) return;
  assert(n <= plen_ && "header length exceeds message");
  if (chain_.empty() || chain_.front().len < n) {
    // Defensive: the first slice of every frame our engines emit covers the
    // whole header region, so this only triggers for hand-built frames.
    coalesce_payload();
  }
  Slice& s0 = chain_.front();
  head_ = s0.chunk;
  hstart_ = s0.off;
  hend_ = s0.off + n;
  head_owned_ = false;  // bytes shared with the frame (and any copy of it)
  s0.off += n;
  s0.len -= n;
  plen_ -= n;
  hdr_acct_ += n;  // moved from payload to header accounting: capacity()
                   // is unchanged, matching the flat buffer
  if (s0.len == 0) chain_.erase(chain_.begin());
}

void Message::append_payload(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  note_ingest(data.size());
  ChunkRef c = ChunkRef::make(data.size());
  std::memcpy(c->data.data(), data.data(), data.size());
  plen_ += data.size();
  chain_.push_back(Slice{std::move(c), 0, data.size()});
}

void Message::append_slice(Slice s) {
  if (s.len == 0) return;
  plen_ += s.len;
  chain_.push_back(std::move(s));
}

void Message::append_shared(const Message& src) {
  for (const Slice& s : src.chain_) append_slice(s);
}

Message Message::share_payload_range(std::size_t off, std::size_t len,
                                     std::size_t headroom) const {
  assert(off + len <= plen_);
  Message m(headroom);
  std::size_t skip = off;
  std::size_t want = len;
  for (const Slice& s : chain_) {
    if (want == 0) break;
    if (skip >= s.len) {
      skip -= s.len;
      continue;
    }
    const std::size_t take = std::min(s.len - skip, want);
    m.append_slice(Slice{s.chunk, s.off + skip, take});
    skip = 0;
    want -= take;
  }
  return m;
}

std::span<const std::uint8_t> Message::payload() const {
  if (chain_.empty()) return {};
  if (chain_.size() > 1) coalesce_payload();
  return chain_.front().span();
}

void Message::coalesce_payload() const {
  if (chain_.size() <= 1) return;
  ChunkRef c = ChunkRef::make(plen_);
  std::size_t at = 0;
  for (const Slice& s : chain_) {
    std::memcpy(c->data.data() + at, s.chunk->data.data() + s.off, s.len);
    at += s.len;
  }
  buf_stats().memcpy_count.fetch_add(1, std::memory_order_relaxed);
  buf_stats().memcpy_bytes.fetch_add(plen_, std::memory_order_relaxed);
  buf_stats().flattens.fetch_add(1, std::memory_order_relaxed);
  buf_stats().flatten_bytes.fetch_add(plen_, std::memory_order_relaxed);
  chain_.clear();
  chain_.push_back(Slice{std::move(c), 0, plen_});
}

std::uint64_t Message::payload_digest(DigestKind kind) const {
  DigestStream ds(kind);
  for (const Slice& s : chain_) ds.update(s.span());
  return ds.finish();
}

WireFrame Message::to_wire() const {
  WireFrame f;
  if (header_len() > 0) f.append(Slice{head_, hstart_, header_len()});
  for (const Slice& s : chain_) f.append(s);
  return f;
}

}  // namespace pa
