#include "buf/message.h"

#include <cassert>
#include <cstring>

namespace pa {

Message::Message(std::size_t headroom)
    : store_(headroom), start_(headroom), payload_(headroom),
      end_(headroom) {}

Message Message::with_payload(std::span<const std::uint8_t> payload,
                              std::size_t headroom) {
  std::vector<std::uint8_t> store(headroom + payload.size());
  if (!payload.empty()) {
    std::memcpy(store.data() + headroom, payload.data(), payload.size());
  }
  return Message(std::move(store), headroom, headroom,
                 headroom + payload.size());
}

Message Message::from_wire(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> store(frame.size());
  if (!frame.empty()) std::memcpy(store.data(), frame.data(), frame.size());
  return Message(std::move(store), 0, 0, frame.size());
}

Message Message::clone() const {
  Message m(store_, start_, payload_, end_);
  m.cb = cb;
  return m;
}

std::uint8_t* Message::push(std::size_t n) {
  if (n > start_) {
    // Headroom exhausted: grow at the front. Rare (default headroom covers
    // all built-in stacks) but must not be a hard failure.
    std::size_t extra = n - start_ + kDefaultHeadroom;
    std::vector<std::uint8_t> bigger(store_.size() + extra);
    std::memcpy(bigger.data() + extra, store_.data(), store_.size());
    store_ = std::move(bigger);
    start_ += extra;
    payload_ += extra;
    end_ += extra;
  }
  start_ -= n;
  return front();
}

void Message::pop(std::size_t n) {
  assert(start_ + n <= payload_ && "pop crosses into payload");
  start_ += n;
}

void Message::set_header_len(std::size_t n) {
  assert(start_ + n <= end_ && "header length exceeds message");
  payload_ = start_ + n;
}

void Message::append_payload(std::span<const std::uint8_t> data) {
  store_.resize(end_);  // drop any slack (e.g. oversized pooled storage)
  store_.insert(store_.end(), data.begin(), data.end());
  end_ += data.size();
}

std::vector<std::uint8_t> Message::take_storage() && {
  start_ = payload_ = end_ = 0;
  return std::move(store_);
}

Message Message::from_storage(std::vector<std::uint8_t> storage,
                              std::size_t headroom) {
  if (storage.size() < headroom) storage.resize(headroom);
  return Message(std::move(storage), headroom, headroom, headroom);
}

}  // namespace pa
