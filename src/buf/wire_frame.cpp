#include "buf/wire_frame.h"

#include <cassert>
#include <cstring>

namespace pa {

BufStats& buf_stats() {
  static BufStats s;
  return s;
}

WireFrame WireFrame::adopt(std::vector<std::uint8_t> bytes) {
  WireFrame f;
  const std::size_t n = bytes.size();
  if (n > 0) {
    f.append(Slice{ChunkRef::adopt_vector(std::move(bytes)), 0, n});
  }
  return f;
}

WireFrame WireFrame::copy_of(std::span<const std::uint8_t> bytes) {
  buf_stats().ingest_copies.fetch_add(1, std::memory_order_relaxed);
  buf_stats().ingest_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
  return adopt(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

void WireFrame::append(Slice s) {
  if (s.len == 0) return;
  total_ += s.len;
  slices_.push_back(std::move(s));
}

std::span<const std::uint8_t> WireFrame::prefix(
    std::size_t n, std::vector<std::uint8_t>& scratch) const {
  if (n > total_) n = total_;
  if (n == 0) return {};
  if (slices_.front().len >= n) return slices_.front().span().first(n);
  scratch.clear();
  scratch.reserve(n);
  for (const Slice& s : slices_) {
    const std::size_t take = std::min(s.len, n - scratch.size());
    const auto sp = s.span();
    scratch.insert(scratch.end(), sp.begin(), sp.begin() + take);
    if (scratch.size() == n) break;
  }
  buf_stats().flattens.fetch_add(1, std::memory_order_relaxed);
  buf_stats().flatten_bytes.fetch_add(n, std::memory_order_relaxed);
  return scratch;
}

std::vector<std::uint8_t> WireFrame::flatten() const {
  std::vector<std::uint8_t> out;
  out.reserve(total_);
  for (const Slice& s : slices_) {
    const auto sp = s.span();
    out.insert(out.end(), sp.begin(), sp.end());
  }
  buf_stats().flattens.fetch_add(1, std::memory_order_relaxed);
  buf_stats().flatten_bytes.fetch_add(total_, std::memory_order_relaxed);
  return out;
}

WireFrame WireFrame::deep_copy() const {
  WireFrame out;
  for (const Slice& s : slices_) {
    ChunkRef c = ChunkRef::make(s.len);
    std::memcpy(c->data.data(), s.chunk->data.data() + s.off, s.len);
    out.append(Slice{std::move(c), 0, s.len});
  }
  buf_stats().memcpy_count.fetch_add(1, std::memory_order_relaxed);
  buf_stats().memcpy_bytes.fetch_add(total_, std::memory_order_relaxed);
  return out;
}

void WireFrame::truncate(std::size_t n) {
  if (n >= total_) return;
  std::size_t kept = 0;
  std::size_t i = 0;
  while (i < slices_.size() && kept + slices_[i].len <= n) {
    kept += slices_[i].len;
    ++i;
  }
  if (i < slices_.size()) {
    slices_[i].len = n - kept;
    if (slices_[i].len > 0) ++i;
  }
  slices_.resize(i);
  total_ = n;
}

std::uint8_t* WireFrame::mutable_byte(std::size_t i) {
  assert(i < total_);
  std::size_t off = i;
  for (Slice& s : slices_) {
    if (off < s.len) {
      if (!s.chunk->unique()) {
        ChunkRef priv = ChunkRef::make(s.len);
        std::memcpy(priv->data.data(), s.chunk->data.data() + s.off, s.len);
        buf_stats().cow_copies.fetch_add(1, std::memory_order_relaxed);
        buf_stats().memcpy_count.fetch_add(1, std::memory_order_relaxed);
        buf_stats().memcpy_bytes.fetch_add(s.len, std::memory_order_relaxed);
        s.chunk = std::move(priv);
        s.off = 0;
      }
      return s.chunk->data.data() + s.off + off;
    }
    off -= s.len;
  }
  return nullptr;  // unreachable given the assert above
}

}  // namespace pa
