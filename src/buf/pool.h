// Explicit message-buffer pooling.
//
// The paper (§6, "Use of a High-Level Language") reports that explicitly
// allocating and deallocating high-bandwidth objects — messages — reduces
// the number of garbage collections dramatically. MessagePool is that
// mechanism: engines acquire buffers from the pool and release them after
// post-processing; only pool *misses* count as fresh allocations, which is
// what the GC model charges for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "buf/message.h"

namespace pa {

class MessagePool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t fresh_allocations = 0;
    std::uint64_t releases = 0;
    std::uint64_t bytes_allocated = 0;  // bytes from fresh allocations only
  };

  explicit MessagePool(std::size_t max_cached = 64) : max_cached_(max_cached) {}

  /// Get a message with the given headroom and at least `payload_capacity`
  /// bytes of room behind it, reusing cached storage when possible.
  Message acquire(std::size_t headroom = Message::kDefaultHeadroom,
                  std::size_t payload_capacity = 0);

  /// Like Message::with_payload but pooled.
  Message acquire_with_payload(std::span<const std::uint8_t> payload,
                               std::size_t headroom = Message::kDefaultHeadroom);

  /// Return a message's storage to the pool for reuse.
  void release(Message&& msg);

  const Stats& stats() const { return stats_; }
  std::size_t cached() const { return cache_.size(); }

 private:
  std::vector<std::vector<std::uint8_t>> cache_;
  std::size_t max_cached_;
  Stats stats_;
};

}  // namespace pa
