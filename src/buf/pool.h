// Explicit message-buffer pooling.
//
// The paper (§6, "Use of a High-Level Language") reports that explicitly
// allocating and deallocating high-bandwidth objects — messages — reduces
// the number of garbage collections dramatically. MessagePool is that
// mechanism: engines acquire buffers from the pool and release them after
// post-processing; only pool *misses* count as fresh allocations, which is
// what the GC model charges for.
//
// Since the zero-copy refactor a released message decomposes into refcounted
// chunks (header chunk + payload chain) rather than one flat vector, and a
// chunk may still be referenced by an in-flight frame or a retransmission
// clone at release time. The pool therefore keeps two views:
//   - an *accounting* view (`vsizes_`) that mirrors the flat-buffer pool's
//     hit/miss behaviour storage-size for storage-size, so fresh_allocations,
//     bytes_allocated and the GC model's timing are unchanged by the
//     refactor;
//   - a *physical* view (`cache_`/`pending_`): chunks whose refcount has
//     returned to 1 are recycled immediately, chunks still shared are parked
//     on `pending_` and swept into the cache once the last foreign reference
//     drops. A chunk is never handed out while anyone else can see it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "buf/chunk.h"
#include "buf/message.h"

namespace pa {

class MessagePool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t fresh_allocations = 0;
    std::uint64_t releases = 0;
    std::uint64_t bytes_allocated = 0;  // bytes from fresh allocations only
    std::uint64_t headroom_regrow = 0;  // released messages' headroom regrows
  };

  explicit MessagePool(std::size_t max_cached = 64) : max_cached_(max_cached) {}

  /// Get a message with the given headroom and at least `payload_capacity`
  /// bytes of room behind it, reusing cached storage when possible.
  Message acquire(std::size_t headroom = Message::kDefaultHeadroom,
                  std::size_t payload_capacity = 0);

  /// Like Message::with_payload but pooled.
  Message acquire_with_payload(std::span<const std::uint8_t> payload,
                               std::size_t headroom = Message::kDefaultHeadroom);

  /// Return a message's storage to the pool for reuse. Chunks still shared
  /// with in-flight frames or clones are parked until they become unique.
  void release(Message&& msg);

  const Stats& stats() const { return stats_; }
  std::size_t cached() const { return vsizes_.size(); }
  std::size_t parked() const { return pending_.size(); }

 private:
  // Parked chunks are pinned by their foreign references anyway, so the cap
  // only bounds the pool's own bookkeeping.
  static constexpr std::size_t kMaxPending = 256;

  void sweep_pending();
  void stash(ChunkRef&& c);
  ChunkRef take_exact(std::size_t size);
  ChunkRef take_at_least(std::size_t size);

  // Accounting view: sizes of the flat storages the pre-refactor pool would
  // be caching right now, in release order (its scan order matters for
  // hit/miss parity).
  std::vector<std::size_t> vsizes_;
  // Physical view. One cache serves header and payload chunks; messages
  // split into two chunks each, hence the doubled cap.
  std::vector<ChunkRef> cache_;
  std::vector<ChunkRef> pending_;
  std::size_t max_cached_;
  Stats stats_;
};

}  // namespace pa
