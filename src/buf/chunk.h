// Reference-counted storage chunks — the unit of sharing in the zero-copy
// message path.
//
// A Chunk owns one contiguous byte array. Messages, wire frames and the
// retransmission buffers all hold Slices (chunk + offset + length) into
// shared chunks instead of copying bytes: clone() bumps a refcount, the
// packer chains slices from many messages into one frame, and the simulated
// network delivers a frame's slices to the receiver untouched.
//
// Ownership rules (see docs/INTERNALS.md, "Buffer management"):
//   - refcount 1  => the holder may mutate the chunk's bytes in place.
//   - refcount >1 => the bytes are frozen; a writer must copy first
//     (copy-on-write) and leave the other holders' view intact.
//   - MessagePool recycles a chunk only once its refcount has returned to 1;
//     a chunk still referenced by an in-flight frame or a retransmission
//     buffer is parked until the last foreign reference drops.
//
// The refcount is atomic because frames cross threads in the concurrent
// deferred-work runtime (src/rt/) and under the real UDP loop; all other
// chunk state is plain data guarded by the refcount contract above.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pa {

/// Process-global data-plane copy accounting. Every counter is a relaxed
/// atomic: hot paths bump them from whichever thread runs the engine, and
/// report()/benchmarks read them without coordination. The split matters:
///   - ingest_*  : bytes copied across the application boundary (send(span)
///     hands us borrowed memory — one copy is the price of admission unless
///     the caller transfers ownership of a vector).
///   - memcpy_*  : bytes copied *inside* the data plane after ingest. The
///     zero-copy invariant is that the steady-state predicted path keeps
///     these at zero; tests assert it.
///   - flatten_* : copies made to present a chained frame contiguously to a
///     legacy consumer (an Env that only accepts flat vectors, a debug tap,
///     a golden-frame test). Kept separate from memcpy_* because they are
///     observation-boundary costs, not data-plane costs.
struct BufStats {
  std::atomic<std::uint64_t> ingest_copies{0};
  std::atomic<std::uint64_t> ingest_bytes{0};
  std::atomic<std::uint64_t> memcpy_count{0};
  std::atomic<std::uint64_t> memcpy_bytes{0};
  std::atomic<std::uint64_t> flattens{0};
  std::atomic<std::uint64_t> flatten_bytes{0};
  std::atomic<std::uint64_t> cow_copies{0};
  std::atomic<std::uint64_t> chain_clones{0};
  std::atomic<std::uint64_t> chain_clone_bytes_shared{0};
  std::atomic<std::uint64_t> headroom_regrows{0};
  std::atomic<std::uint64_t> chunks_allocated{0};
  std::atomic<std::uint64_t> chunks_recycled{0};
};

BufStats& buf_stats();

class Chunk;
void chunk_ref(Chunk* c) noexcept;
void chunk_unref(Chunk* c) noexcept;

/// One refcounted byte array. Created with refcount 1 (the creating
/// ChunkRef); heap-allocated and deleted when the last reference drops.
class Chunk {
 public:
  explicit Chunk(std::size_t size) : data(size) {
    buf_stats().chunks_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  explicit Chunk(std::vector<std::uint8_t> bytes) : data(std::move(bytes)) {
    buf_stats().chunks_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  Chunk(const Chunk&) = delete;
  Chunk& operator=(const Chunk&) = delete;

  std::vector<std::uint8_t> data;

  /// Set by the real loop on receive buffers it owns and recycles (see
  /// docs/INTERNALS.md, "The kernel boundary"). MessagePool::release drops
  /// references to tagged chunks instead of caching or parking them, so the
  /// refcount returns to the loop's recycler and the buffer is reused for
  /// the next recvmmsg batch. Without the tag, both recyclers would hold a
  /// reference waiting for the other to drop — neither ever sees unique().
  bool kernel_buf = false;

  std::uint32_t refs() const noexcept {
    return refs_.load(std::memory_order_acquire);
  }
  bool unique() const noexcept { return refs() == 1; }

 private:
  friend void chunk_ref(Chunk*) noexcept;
  friend void chunk_unref(Chunk*) noexcept;
  std::atomic<std::uint32_t> refs_{1};
};

inline void chunk_ref(Chunk* c) noexcept {
  c->refs_.fetch_add(1, std::memory_order_relaxed);
}

inline void chunk_unref(Chunk* c) noexcept {
  if (c->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete c;
}

/// Intrusive smart pointer over Chunk.
class ChunkRef {
 public:
  ChunkRef() = default;
  explicit ChunkRef(Chunk* adopt) : c_(adopt) {}  // takes the initial ref
  ChunkRef(const ChunkRef& o) : c_(o.c_) {
    if (c_ != nullptr) chunk_ref(c_);
  }
  ChunkRef(ChunkRef&& o) noexcept : c_(std::exchange(o.c_, nullptr)) {}
  ChunkRef& operator=(const ChunkRef& o) {
    if (this != &o) {
      if (o.c_ != nullptr) chunk_ref(o.c_);
      if (c_ != nullptr) chunk_unref(c_);
      c_ = o.c_;
    }
    return *this;
  }
  ChunkRef& operator=(ChunkRef&& o) noexcept {
    if (this != &o) {
      if (c_ != nullptr) chunk_unref(c_);
      c_ = std::exchange(o.c_, nullptr);
    }
    return *this;
  }
  ~ChunkRef() {
    if (c_ != nullptr) chunk_unref(c_);
  }

  static ChunkRef make(std::size_t size) { return ChunkRef(new Chunk(size)); }
  static ChunkRef adopt_vector(std::vector<std::uint8_t> bytes) {
    return ChunkRef(new Chunk(std::move(bytes)));
  }

  Chunk* get() const noexcept { return c_; }
  Chunk* operator->() const noexcept { return c_; }
  Chunk& operator*() const noexcept { return *c_; }
  explicit operator bool() const noexcept { return c_ != nullptr; }
  void reset() {
    if (c_ != nullptr) chunk_unref(c_);
    c_ = nullptr;
  }

 private:
  Chunk* c_ = nullptr;
};

/// A view of `len` bytes starting at `off` inside a shared chunk. Copying a
/// Slice is a refcount bump, never a byte copy.
struct Slice {
  ChunkRef chunk;
  std::size_t off = 0;
  std::size_t len = 0;

  std::span<const std::uint8_t> span() const {
    return {chunk->data.data() + off, len};
  }
};

}  // namespace pa
