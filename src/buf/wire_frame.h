// A wire frame as a gather list.
//
// Engines hand the network a WireFrame — an ordered list of Slices into
// refcounted chunks — instead of a flat byte vector. On the send path the
// frame references the message's header chunk and payload chain directly
// (zero copies); the real UDP transport gathers the slices with sendmsg(2)
// and the simulated network carries them through the event queue and hands
// them to the receiving engine still chained. Legacy consumers (flat-vector
// Envs, taps, golden-frame tests) call flatten().
//
// A WireFrame is cheap to copy (slice vector + refcount bumps), which the
// simulator's duplication fault and std::function captures rely on. The
// bytes it references are frozen while shared (chunk contract, buf/chunk.h);
// the fault injectors that must mutate a frame in flight go through
// mutable_byte() / truncate(), which copy-on-write respectively trim slices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "buf/chunk.h"

namespace pa {

class WireFrame {
 public:
  WireFrame() = default;

  /// Wrap an existing byte vector as a single-chunk frame. Zero-copy: the
  /// vector's buffer becomes the chunk's storage.
  static WireFrame adopt(std::vector<std::uint8_t> bytes);

  /// Build a frame by copying borrowed bytes (counted as an ingest copy).
  static WireFrame copy_of(std::span<const std::uint8_t> bytes);

  void append(Slice s);

  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  std::size_t num_slices() const { return slices_.size(); }
  const std::vector<Slice>& slices() const { return slices_; }

  /// The first slice's bytes — enough for preamble / identification peeks
  /// on every frame our engines emit (the whole header region is one slice).
  std::span<const std::uint8_t> first() const {
    return slices_.empty() ? std::span<const std::uint8_t>{}
                           : slices_.front().span();
  }

  /// A contiguous view of the first min(n, size()) bytes. Returns a direct
  /// span into the first slice when it covers the range; otherwise copies
  /// into `scratch` (defensive — engines never produce such frames).
  std::span<const std::uint8_t> prefix(std::size_t n,
                                       std::vector<std::uint8_t>& scratch)
      const;

  /// One flat copy of the whole frame (counted as a flatten).
  std::vector<std::uint8_t> flatten() const;

  /// A frame with the same bytes in private chunks (counted as a data-plane
  /// copy; used by the simulator's duplication fault so the two deliveries
  /// cannot alias each other's header mutations).
  WireFrame deep_copy() const;

  /// Cut the frame to its first n bytes by trimming the slice list.
  void truncate(std::size_t n);

  /// Mutable access to byte i for in-flight corruption: if the owning chunk
  /// is shared, the slice is first copied into a private chunk (CoW) so no
  /// other holder observes the flip.
  std::uint8_t* mutable_byte(std::size_t i);

  template <typename F>
  void for_each(F&& f) const {
    for (const Slice& s : slices_) f(s.span());
  }

  /// Move the slice list out (Message::from_wire adoption); leaves the
  /// frame empty.
  std::vector<Slice> take_slices() && {
    total_ = 0;
    return std::move(slices_);
  }

 private:
  std::vector<Slice> slices_;
  std::size_t total_ = 0;
};

}  // namespace pa
