// FaultSocket: deterministic fault injection between RealLoop and the
// kernel.
//
// PR 1 proved the stack's masking techniques survive faults — but only on
// the simulated network, whose injectors live in sim/network. The real UDP
// path had never seen a dropped, duplicated or reordered packet. This
// wrapper sits on a RealLoop socket's *send* side and applies the same
// fault vocabulary as sim/network's LinkParams — memoryless loss,
// duplication, single-bit corruption, truncation to a proper prefix, hold
// delay (which reorders against later in-order sends), deterministic
// drop-every-N, pause/blackhole, and two-state Gilbert–Elliott burst loss —
// driven by the same seeded Rng, so a fixed seed reproduces the exact same
// fault *decision sequence* for a given sequence of offered datagrams.
//
// The split of responsibilities keeps the wrapper kernel-free and testable:
// judge() draws the fate of one datagram and apply() mutates a byte buffer
// accordingly; RealLoop owns the syscalls and the delayed-datagram queue.
//
// Direction split: the socket carries two fully independent fault lanes,
// tx (applied by RealLoop before sendto) and rx (applied at ingest, before
// the datagram reaches the handler). Each lane has its own config, Rng
// (derived from the one seed with a per-lane salt), Gilbert–Elliott channel
// state, drop-every counter and stats — so the interleaving of sends and
// receives never perturbs either lane's schedule, and an asymmetric link
// (tx dead, rx alive) is one config away. The undirected legacy API
// (set_config/judge/stats) aliases the tx lane and keeps its exact
// pre-split schedule for a given seed.
//
// Thread-safety: none. A FaultSocket belongs to the loop that owns the
// socket; RealLoop serializes access under its own lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace pa::resil {

/// Mirrors sim/network's LinkParams fault vocabulary (transmission-cost
/// fields excluded: the kernel and the wire provide the real timing).
struct FaultConfig {
  double loss_prob = 0.0;
  double dup_prob = 0.0;
  double corrupt_prob = 0.0;   // one random bit flipped
  double truncate_prob = 0.0;  // cut to a random proper non-empty prefix
  VtDur delay_jitter = 0;      // uniform hold in [0, jitter]; 0 = send now
  std::uint32_t drop_every = 0;  // deterministic: drop every N-th (0 = off)
  bool paused = false;           // blackhole until cleared
  bool ge_enabled = false;       // Gilbert–Elliott burst loss
  double ge_p_good_to_bad = 0.05;
  double ge_p_bad_to_good = 0.25;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.75;
};

struct FaultStats {
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;     // loss + drop_every + GE + paused
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t delayed = 0;
};

class FaultSocket {
 public:
  enum class Dir : std::uint8_t { kTx, kRx };

  /// `cfg` configures the tx lane (the legacy single-direction behaviour);
  /// the rx lane starts fault-free until set_config(kRx, ...).
  explicit FaultSocket(FaultConfig cfg = {}, std::uint64_t seed = 1) {
    tx_.cfg = cfg;
    tx_.rng = Rng(seed);
    rx_.rng = Rng(seed ^ kRxSalt);
  }

  /// Reconfigure one lane mid-stream (e.g. pause, then heal). Rng state and
  /// the GE channel state are preserved: the schedule stays
  /// seed-deterministic, and the other lane is untouched.
  void set_config(Dir d, const FaultConfig& cfg) { lane(d).cfg = cfg; }
  const FaultConfig& config(Dir d) const { return lane(d).cfg; }

  // Undirected legacy API: the tx lane.
  void set_config(const FaultConfig& cfg) { tx_.cfg = cfg; }
  const FaultConfig& config() const { return tx_.cfg; }

  /// Restart both lanes' schedules from a seed (also resets the GE channels
  /// and drop-every counters, so two sockets reseeded alike judge alike).
  void reseed(std::uint64_t seed);

  /// The fate of one outgoing datagram of `len` bytes.
  struct Verdict {
    bool drop = false;
    std::uint32_t copies = 1;       // 2 when duplicated
    VtDur delay = 0;                // > 0: hold before handing to the kernel
    bool corrupt = false;
    std::uint64_t corrupt_bit = 0;  // absolute bit index to flip
    std::size_t truncate_to = 0;    // 0 = intact; else the new length
  };

  /// Draw the fate of the next datagram on one lane. Deterministic: the
  /// n-th judge() call on a lane after a given seed always returns the same
  /// verdict for the same length sequence, regardless of what the other
  /// lane judged in between.
  Verdict judge(Dir d, std::size_t len);
  Verdict judge(std::size_t len) { return judge(Dir::kTx, len); }

  /// Apply a verdict's payload mutations (bit flip, truncation) in place.
  static void apply(const Verdict& v, std::vector<std::uint8_t>& bytes);

  const FaultStats& stats(Dir d) const { return lane(d).stats; }
  const FaultStats& stats() const { return tx_.stats; }

 private:
  struct Lane {
    FaultConfig cfg;
    Rng rng;
    bool ge_bad = false;
    std::uint64_t count = 0;  // offered datagrams (drop_every phase)
    FaultStats stats;
  };

  // Decorrelates the rx lane's draws from tx under the one user seed.
  static constexpr std::uint64_t kRxSalt = 0x72785f6c616e65ull;  // "rx_lane"

  Lane& lane(Dir d) { return d == Dir::kTx ? tx_ : rx_; }
  const Lane& lane(Dir d) const { return d == Dir::kTx ? tx_ : rx_; }

  Lane tx_;
  Lane rx_;
};

}  // namespace pa::resil
