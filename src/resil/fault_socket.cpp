#include "resil/fault_socket.h"

namespace pa::resil {

void FaultSocket::reseed(std::uint64_t seed) {
  rng_ = Rng(seed);
  ge_bad_ = false;
  count_ = 0;
}

FaultSocket::Verdict FaultSocket::judge(std::size_t len) {
  ++stats_.offered;
  ++count_;
  Verdict v;

  if (cfg_.paused) {
    ++stats_.dropped;
    v.drop = true;
    return v;
  }
  // Deterministic drop first (mirrors sim/network: applied before the
  // probabilistic draws so A/B experiments stay aligned).
  if (cfg_.drop_every != 0 && count_ % cfg_.drop_every == 0) {
    ++stats_.dropped;
    v.drop = true;
    return v;
  }
  if (cfg_.loss_prob > 0 && rng_.chance(cfg_.loss_prob)) {
    ++stats_.dropped;
    v.drop = true;
    return v;
  }
  if (cfg_.ge_enabled) {
    // Advance the two-state channel per datagram, then draw loss by state.
    if (ge_bad_) {
      if (rng_.chance(cfg_.ge_p_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.chance(cfg_.ge_p_good_to_bad)) ge_bad_ = true;
    }
    const double p = ge_bad_ ? cfg_.ge_loss_bad : cfg_.ge_loss_good;
    if (p > 0 && rng_.chance(p)) {
      ++stats_.dropped;
      v.drop = true;
      return v;
    }
  }
  if (cfg_.dup_prob > 0 && rng_.chance(cfg_.dup_prob)) {
    ++stats_.duplicated;
    v.copies = 2;
  }
  if (len > 0 && cfg_.corrupt_prob > 0 && rng_.chance(cfg_.corrupt_prob)) {
    ++stats_.corrupted;
    v.corrupt = true;
    v.corrupt_bit = rng_.next_below(static_cast<std::uint64_t>(len) * 8);
  }
  if (len > 1 && cfg_.truncate_prob > 0 && rng_.chance(cfg_.truncate_prob)) {
    ++stats_.truncated;
    // A proper non-empty prefix, like the sim injector.
    v.truncate_to = static_cast<std::size_t>(
        1 + rng_.next_below(static_cast<std::uint64_t>(len) - 1));
  }
  if (cfg_.delay_jitter > 0) {
    v.delay = static_cast<VtDur>(
        rng_.next_below(static_cast<std::uint64_t>(cfg_.delay_jitter) + 1));
    if (v.delay > 0) ++stats_.delayed;
  }
  return v;
}

void FaultSocket::apply(const Verdict& v, std::vector<std::uint8_t>& bytes) {
  if (v.truncate_to != 0 && v.truncate_to < bytes.size()) {
    bytes.resize(v.truncate_to);
  }
  if (v.corrupt && !bytes.empty()) {
    // The bit index was drawn against the pre-truncation length; fold it
    // into whatever survives so the flip always lands.
    const std::uint64_t bit = v.corrupt_bit % (bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

}  // namespace pa::resil
