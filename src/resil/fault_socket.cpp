#include "resil/fault_socket.h"

namespace pa::resil {

void FaultSocket::reseed(std::uint64_t seed) {
  tx_.rng = Rng(seed);
  tx_.ge_bad = false;
  tx_.count = 0;
  rx_.rng = Rng(seed ^ kRxSalt);
  rx_.ge_bad = false;
  rx_.count = 0;
}

FaultSocket::Verdict FaultSocket::judge(Dir d, std::size_t len) {
  Lane& ln = lane(d);
  const FaultConfig& cfg = ln.cfg;
  ++ln.stats.offered;
  ++ln.count;
  Verdict v;

  if (cfg.paused) {
    ++ln.stats.dropped;
    v.drop = true;
    return v;
  }
  // Deterministic drop first (mirrors sim/network: applied before the
  // probabilistic draws so A/B experiments stay aligned).
  if (cfg.drop_every != 0 && ln.count % cfg.drop_every == 0) {
    ++ln.stats.dropped;
    v.drop = true;
    return v;
  }
  if (cfg.loss_prob > 0 && ln.rng.chance(cfg.loss_prob)) {
    ++ln.stats.dropped;
    v.drop = true;
    return v;
  }
  if (cfg.ge_enabled) {
    // Advance the two-state channel per datagram, then draw loss by state.
    if (ln.ge_bad) {
      if (ln.rng.chance(cfg.ge_p_bad_to_good)) ln.ge_bad = false;
    } else {
      if (ln.rng.chance(cfg.ge_p_good_to_bad)) ln.ge_bad = true;
    }
    const double p = ln.ge_bad ? cfg.ge_loss_bad : cfg.ge_loss_good;
    if (p > 0 && ln.rng.chance(p)) {
      ++ln.stats.dropped;
      v.drop = true;
      return v;
    }
  }
  if (cfg.dup_prob > 0 && ln.rng.chance(cfg.dup_prob)) {
    ++ln.stats.duplicated;
    v.copies = 2;
  }
  if (len > 0 && cfg.corrupt_prob > 0 && ln.rng.chance(cfg.corrupt_prob)) {
    ++ln.stats.corrupted;
    v.corrupt = true;
    v.corrupt_bit = ln.rng.next_below(static_cast<std::uint64_t>(len) * 8);
  }
  if (len > 1 && cfg.truncate_prob > 0 && ln.rng.chance(cfg.truncate_prob)) {
    ++ln.stats.truncated;
    // A proper non-empty prefix, like the sim injector.
    v.truncate_to = static_cast<std::size_t>(
        1 + ln.rng.next_below(static_cast<std::uint64_t>(len) - 1));
  }
  if (cfg.delay_jitter > 0) {
    v.delay = static_cast<VtDur>(
        ln.rng.next_below(static_cast<std::uint64_t>(cfg.delay_jitter) + 1));
    if (v.delay > 0) ++ln.stats.delayed;
  }
  return v;
}

void FaultSocket::apply(const Verdict& v, std::vector<std::uint8_t>& bytes) {
  if (v.truncate_to != 0 && v.truncate_to < bytes.size()) {
    bytes.resize(v.truncate_to);
  }
  if (v.corrupt && !bytes.empty()) {
    // The bit index was drawn against the pre-truncation length; fold it
    // into whatever survives so the flip always lands.
    const std::uint64_t bit = v.corrupt_bit % (bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

}  // namespace pa::resil
