#include "resil/governor.h"

#include "obs/metrics.h"

namespace pa::resil {
namespace {

// Process-global governor metrics. Like the engine phase histograms,
// governors are cheap to create in tests, so the gauges are shared: with
// several governors alive the gauges show the most recent ticker (the
// common deployment is one governor per process).
struct GovMetrics {
  obs::Gauge& level;
  obs::Gauge& pressure_millis;
  obs::Counter& level_changes;
  obs::Counter& ticks;
};

GovMetrics& gov_metrics() {
  static GovMetrics m{
      obs::registry().gauge("resil_level",
                            "overload level (0 normal .. 3 critical)"),
      obs::registry().gauge("resil_pressure_millis",
                            "smoothed overload pressure x1000"),
      obs::registry().counter("resil_level_changes_total",
                              "overload level transitions"),
      obs::registry().counter("resil_ticks_total",
                              "governor smoothing steps"),
  };
  return m;
}

}  // namespace

const char* level_name(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kNormal: return "normal";
    case OverloadLevel::kElevated: return "elevated";
    case OverloadLevel::kSaturated: return "saturated";
    case OverloadLevel::kCritical: return "critical";
  }
  return "?";
}

OverloadGovernor::OverloadGovernor(GovernorConfig cfg) : cfg_(cfg) {
  gov_metrics();  // register the metric names up front
}

void OverloadGovernor::report_backlog(std::size_t depth) {
  sig_backlog_.store(
      clamp01(static_cast<double>(depth) /
              static_cast<double>(cfg_.backlog_watermark)),
      std::memory_order_relaxed);
}

void OverloadGovernor::report_recv_queue(std::size_t depth) {
  sig_recv_.store(clamp01(static_cast<double>(depth) /
                          static_cast<double>(cfg_.recv_watermark)),
                  std::memory_order_relaxed);
}

void OverloadGovernor::report_pool(std::size_t in_use, std::size_t capacity) {
  if (capacity == 0) return;
  sig_pool_.store(
      clamp01(static_cast<double>(in_use) / static_cast<double>(capacity)),
      std::memory_order_relaxed);
}

void OverloadGovernor::report_ring(double pressure) {
  // Fast EWMA so a burst of handbacks registers within a few events. The
  // load-then-store is racy under concurrent reporters; acceptable for a
  // smoothing heuristic.
  const double prev = sig_ring_.load(std::memory_order_relaxed);
  sig_ring_.store(prev + 0.25 * (clamp01(pressure) - prev),
                  std::memory_order_relaxed);
}

void OverloadGovernor::report_loop_lag(VtDur lag) {
  const double frac = clamp01(static_cast<double>(lag) /
                              static_cast<double>(cfg_.lag_watermark));
  const double prev = sig_lag_.load(std::memory_order_relaxed);
  sig_lag_.store(prev + 0.25 * (frac - prev), std::memory_order_relaxed);
}

void OverloadGovernor::report_net_train(std::size_t depth) {
  sig_net_tx_.store(
      clamp01(static_cast<double>(depth) /
              static_cast<double>(cfg_.net_train_watermark)),
      std::memory_order_relaxed);
}

void OverloadGovernor::report_net_drain(double saturation) {
  const double prev = sig_net_rx_.load(std::memory_order_relaxed);
  sig_net_rx_.store(prev + 0.25 * (clamp01(saturation) - prev),
                    std::memory_order_relaxed);
}

void OverloadGovernor::report_churn(double pressure) {
  const double prev = sig_churn_.load(std::memory_order_relaxed);
  sig_churn_.store(prev + 0.25 * (clamp01(pressure) - prev),
                   std::memory_order_relaxed);
}

void OverloadGovernor::tick(Vt now) {
  const Vt last = last_tick_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < cfg_.tick_interval) return;
  last_tick_.store(now, std::memory_order_relaxed);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  gov_metrics().ticks.inc();

  double raw = sig_backlog_.load(std::memory_order_relaxed);
  const double others[] = {sig_recv_.load(std::memory_order_relaxed),
                           sig_pool_.load(std::memory_order_relaxed),
                           sig_ring_.load(std::memory_order_relaxed),
                           sig_lag_.load(std::memory_order_relaxed),
                           sig_net_tx_.load(std::memory_order_relaxed),
                           sig_net_rx_.load(std::memory_order_relaxed),
                           sig_churn_.load(std::memory_order_relaxed)};
  for (double s : others) {
    if (s > raw) raw = s;
  }
  const double prev = smoothed_.load(std::memory_order_relaxed);
  const double next = prev + cfg_.alpha * (raw - prev);
  smoothed_.store(next, std::memory_order_relaxed);
  gov_metrics().pressure_millis.set(static_cast<std::int64_t>(next * 1000));

  // Rising edges take effect immediately; falling edges need the margin.
  const OverloadLevel cur = level();
  OverloadLevel up = OverloadLevel::kNormal;
  if (next >= cfg_.up_critical) {
    up = OverloadLevel::kCritical;
  } else if (next >= cfg_.up_saturated) {
    up = OverloadLevel::kSaturated;
  } else if (next >= cfg_.up_elevated) {
    up = OverloadLevel::kElevated;
  }
  if (up > cur) {
    set_level(up);
    return;
  }
  if (up < cur) {
    // Leave the current level only once pressure has dropped a margin below
    // its entry threshold; then fall to wherever pressure now points.
    const double entry = cur == OverloadLevel::kCritical ? cfg_.up_critical
                         : cur == OverloadLevel::kSaturated
                             ? cfg_.up_saturated
                             : cfg_.up_elevated;
    if (next < entry - cfg_.down_margin) set_level(up);
  }
}

void OverloadGovernor::set_level(OverloadLevel next) {
  level_.store(static_cast<std::uint8_t>(next), std::memory_order_relaxed);
  level_changes_.fetch_add(1, std::memory_order_relaxed);
  gov_metrics().level.set(static_cast<std::int64_t>(next));
  gov_metrics().level_changes.inc();
  std::uint8_t seen = max_level_.load(std::memory_order_relaxed);
  while (static_cast<std::uint8_t>(next) > seen &&
         !max_level_.compare_exchange_weak(seen,
                                           static_cast<std::uint8_t>(next),
                                           std::memory_order_relaxed)) {
  }
}

bool OverloadGovernor::admit_ingest(std::size_t depth) const {
  switch (level()) {
    case OverloadLevel::kNormal: return true;
    case OverloadLevel::kElevated: return depth < cfg_.admit_elevated;
    case OverloadLevel::kSaturated: return depth < cfg_.admit_saturated;
    case OverloadLevel::kCritical: return depth < cfg_.admit_critical;
  }
  return true;
}

std::size_t OverloadGovernor::pack_batch_limit(std::size_t configured) const {
  std::size_t limit = configured;
  switch (level()) {
    case OverloadLevel::kNormal:
    case OverloadLevel::kElevated: break;
    case OverloadLevel::kSaturated: limit = configured / 2; break;
    case OverloadLevel::kCritical: limit = configured / 4; break;
  }
  return limit < 1 ? 1 : limit;
}

std::uint32_t OverloadGovernor::window_clamp(std::uint32_t configured) const {
  std::uint32_t clamp = configured;
  switch (level()) {
    case OverloadLevel::kNormal:
    case OverloadLevel::kElevated: break;
    case OverloadLevel::kSaturated: clamp = configured / 2; break;
    case OverloadLevel::kCritical: clamp = configured / 4; break;
  }
  return clamp < 1 ? 1 : clamp;
}

}  // namespace pa::resil
