// Overload governor: turns the pressure signals the system already has into
// one smoothed overload level, and answers policy questions per level.
//
// Nothing in the stack degrades gracefully on its own when offered load
// exceeds capacity: the rt executor hands work back inline, the recv queue
// fills and overflows, the backlog grows without bound. Production
// transports treat overload as a first-class input with explicit pacing and
// shedding; the governor is that input's aggregation point.
//
// Signals (all normalized to a [0,1] "fraction of watermark"):
//   - PA backlog depth (admission pressure at ingest),
//   - recv-queue depth (post-processing is behind the wire),
//   - MessagePool occupancy (allocation pressure),
//   - rt::Executor ring backpressure / inline-handback events,
//   - RealLoop timer wakeup lag (the dispatch thread itself is behind),
//   - RealLoop send-train depth (datagrams queued for the next sendmmsg
//     flush: the kernel or the loop is not draining sends fast enough),
//   - RealLoop receive-drain saturation (consecutive full recvmmsg batches:
//     the wire is delivering faster than one wakeup can ingest),
//   - Router connection churn (the fraction of traffic demanding fresh
//     conn-ident scans or shed by ident quotas: a churn/join storm).
//
// Event-shaped signals (ring handbacks, wakeup lag) are EWMA-smoothed at
// report time; level-shaped signals (queue depths) keep their latest value.
// tick() folds the maximum of the signals into one smoothed pressure value
// and maps it onto the ladder
//
//   Normal -> Elevated -> Saturated -> Critical
//
// with hysteresis (a level only drops after pressure falls a margin below
// its entry threshold), so the level does not flap at a boundary.
//
// Policy ladder (each level keeps everything the previous level does):
//   Elevated:   admission watermark at PA ingest (new app sends beyond the
//               watermark are shed as `shed_ingest`).
//   Saturated:  watermark tightens; heartbeat emissions shed
//               (`shed_heartbeat`); new conn-idents rejected at the router
//               before established traffic (`shed_new_conn`); packing
//               trains shrink and the send window is clamped.
//   Critical:   watermark tightens again; standalone-ack/gossip emissions
//               shed (`shed_gossip`); train and clamp tighten.
//
// Thread-safety: all reports and queries are relaxed atomics — any thread
// may report or query; tick() is called from the engine's serialized paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/types.h"

namespace pa::resil {

enum class OverloadLevel : std::uint8_t {
  kNormal = 0,
  kElevated,
  kSaturated,
  kCritical,
};

const char* level_name(OverloadLevel level);

struct GovernorConfig {
  // Smoothing factor folded into the pressure EWMA per tick.
  double alpha = 0.3;
  // Minimum spacing between smoothing steps (Env-clock time: virtual ns in
  // the simulator, wall ns on the real loop).
  VtDur tick_interval = vt_us(100);
  // Rising thresholds on smoothed pressure.
  double up_elevated = 0.25;
  double up_saturated = 0.55;
  double up_critical = 0.85;
  // A level is only left downward once pressure sits this far below its
  // entry threshold (hysteresis).
  double down_margin = 0.10;
  // Signal watermarks: the depth/lag that reads as pressure 1.0.
  std::size_t backlog_watermark = 256;
  std::size_t recv_watermark = 512;
  VtDur lag_watermark = vt_ms(5);
  // Send-train depth (datagrams queued across the loop's per-socket trains)
  // that reads as pressure 1.0.
  std::size_t net_train_watermark = 256;
  // Per-level ingest admission watermarks (max backlog depth a new app send
  // may join). kNormal admits unconditionally.
  std::size_t admit_elevated = 256;
  std::size_t admit_saturated = 64;
  std::size_t admit_critical = 16;
};

class OverloadGovernor {
 public:
  explicit OverloadGovernor(GovernorConfig cfg = {});

  // --- signal ingest (any thread) -----------------------------------------
  void report_backlog(std::size_t depth);
  void report_recv_queue(std::size_t depth);
  void report_pool(std::size_t in_use, std::size_t capacity);
  /// Ring pressure events: 1.0 for an inline handback (ring full), 0.0 for
  /// a successful submission. EWMA-smoothed at report time.
  void report_ring(double pressure);
  /// Timer wakeup lag on the dispatch loop (how late a due timer fired).
  void report_loop_lag(VtDur lag);
  /// Depth of the real loop's send trains at a flush point (level-shaped,
  /// normalized against net_train_watermark). A depth that keeps growing
  /// means sendmmsg flushes are not keeping up with enqueues.
  void report_net_train(std::size_t depth);
  /// Receive-drain saturation in [0,1]: how close the loop's recvmmsg
  /// drains are to never finding the socket empty (event-shaped, EWMA).
  void report_net_drain(double saturation);
  /// Connection-churn pressure: the router reports 1.0 per churn event (a
  /// frame demanding a fresh conn-ident scan, a quota shed, an unknown
  /// cookie) and 0.0 per established cookie-routed frame, so the signal
  /// tracks the *fraction* of traffic that is churn (event-shaped, EWMA —
  /// same idiom as report_ring). A churn storm raises the ladder, which
  /// arms reject_new_idents() and the router's scan budget.
  void report_churn(double pressure);

  // --- smoothing ----------------------------------------------------------
  /// Fold the current signal maximum into the smoothed pressure and update
  /// the level. Cheap no-op until `tick_interval` has elapsed since the
  /// last step.
  void tick(Vt now);

  OverloadLevel level() const {
    return static_cast<OverloadLevel>(
        level_.load(std::memory_order_relaxed));
  }
  double pressure() const { return smoothed_.load(std::memory_order_relaxed); }
  /// Highest level reached since construction (bench/test assertion hook).
  OverloadLevel max_level() const {
    return static_cast<OverloadLevel>(
        max_level_.load(std::memory_order_relaxed));
  }

  // --- policy ladder ------------------------------------------------------
  /// May a new application send join a backlog currently `depth` deep?
  bool admit_ingest(std::size_t depth) const;
  /// Shed heartbeat emissions? (>= Saturated)
  bool shed_heartbeat() const { return level() >= OverloadLevel::kSaturated; }
  /// Shed standalone-ack/gossip emissions? (Critical only: acks are
  /// repairable — retransmission re-triggers them — but shedding them any
  /// earlier would slow the very drain that relieves the pressure.)
  bool shed_gossip() const { return level() >= OverloadLevel::kCritical; }
  /// Reject frames that would need a fresh conn-ident scan? (>= Saturated;
  /// established cookie-routed traffic is never affected.)
  bool reject_new_idents() const {
    return level() >= OverloadLevel::kSaturated;
  }
  /// Packing-train size limit under pressure: full batches amortize cost
  /// but each train is a latency bubble for everything behind it, so the
  /// train shrinks as the ladder climbs.
  std::size_t pack_batch_limit(std::size_t configured) const;
  /// Send-window clamp under pressure: fewer in-flight frames means the
  /// receiver's recv queue and post-processing stop being force-fed.
  std::uint32_t window_clamp(std::uint32_t configured) const;

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t level_changes = 0;
  };
  Stats stats() const {
    return Stats{ticks_.load(std::memory_order_relaxed),
                 level_changes_.load(std::memory_order_relaxed)};
  }

  const GovernorConfig& config() const { return cfg_; }

 private:
  static double clamp01(double v) { return v < 0 ? 0 : (v > 1 ? 1 : v); }
  void set_level(OverloadLevel next);

  GovernorConfig cfg_;

  // Level-shaped signals: latest value wins.
  std::atomic<double> sig_backlog_{0};
  std::atomic<double> sig_recv_{0};
  std::atomic<double> sig_pool_{0};
  std::atomic<double> sig_net_tx_{0};
  // Event-shaped signals: EWMA at report time (approximate under racy
  // read-modify-write — these are heuristics, not ledgers).
  std::atomic<double> sig_ring_{0};
  std::atomic<double> sig_lag_{0};
  std::atomic<double> sig_net_rx_{0};
  std::atomic<double> sig_churn_{0};

  std::atomic<double> smoothed_{0};
  std::atomic<Vt> last_tick_{0};
  std::atomic<std::uint8_t> level_{0};
  std::atomic<std::uint8_t> max_level_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> level_changes_{0};
};

}  // namespace pa::resil
