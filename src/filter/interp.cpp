#include "filter/interp.h"

#include <cassert>

namespace pa {

std::uint64_t wide_digest(DigestKind kind, const HeaderView& hdr,
                          const Message& msg) {
  const CompiledLayout* lay = hdr.layout();
  // Covered header bytes are few (tens): mask them into one small buffer,
  // then stream the payload chain through the digest without flattening or
  // concatenating anything.
  DigestStream ds(kind);
  std::vector<std::uint8_t> buf;
  if (lay != nullptr) {
    std::size_t covered = 0;
    for (std::size_t r = 0; r < lay->num_regions(); ++r) {
      covered += lay->digest_mask(r).size();
    }
    buf.reserve(covered);
    for (std::size_t r = 0; r < lay->num_regions(); ++r) {
      const auto& mask = lay->digest_mask(r);
      if (mask.empty()) continue;
      const std::uint8_t* base = hdr.region(r);
      if (base == nullptr) continue;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        buf.push_back(static_cast<std::uint8_t>(base[i] & mask[i]));
      }
    }
  }
  ds.update(buf);
  msg.for_each_payload([&](std::span<const std::uint8_t> s) { ds.update(s); });
  return ds.finish();
}

std::int64_t run_filter(const FilterProgram& program, HeaderView& hdr,
                        const Message& msg) {
  assert(program.validated() && "run_filter requires a validated program");
  // The validator computed the exact stack need; a small fixed buffer
  // suffices for any realistic program ("typically just a few entries").
  std::uint64_t stack[64];
  assert(program.max_stack_depth() <= 64);
  std::size_t sp = 0;

  for (const FilterInstr& in : program.code()) {
    switch (in.op) {
      case FilterOp::kPushConst:
        stack[sp++] = static_cast<std::uint64_t>(in.imm);
        break;
      case FilterOp::kPushField:
        stack[sp++] = hdr.get(in.field);
        break;
      case FilterOp::kPushSize:
        stack[sp++] = msg.payload_len();
        break;
      case FilterOp::kDigest:
        stack[sp++] = in.wide ? wide_digest(in.dig, hdr, msg)
                              : msg.payload_digest(in.dig);
        break;
      case FilterOp::kPopField:
        hdr.set(in.field, stack[--sp]);
        break;
      case FilterOp::kReturn:
        return in.imm;
      case FilterOp::kAbort:
        if (stack[--sp] != 0) return in.imm;
        break;
      default: {
        std::uint64_t b = stack[--sp];
        std::uint64_t a = stack[--sp];
        std::uint64_t r = 0;
        switch (in.op) {
          case FilterOp::kAdd: r = a + b; break;
          case FilterOp::kSub: r = a - b; break;
          case FilterOp::kMul: r = a * b; break;
          case FilterOp::kDiv:
            if (b == 0) return 0;  // fault: fail safe
            r = a / b;
            break;
          case FilterOp::kMod:
            if (b == 0) return 0;
            r = a % b;
            break;
          case FilterOp::kAnd: r = a & b; break;
          case FilterOp::kOr: r = a | b; break;
          case FilterOp::kXor: r = a ^ b; break;
          case FilterOp::kShl: r = b >= 64 ? 0 : a << b; break;
          case FilterOp::kShr: r = b >= 64 ? 0 : a >> b; break;
          case FilterOp::kEq: r = a == b; break;
          case FilterOp::kNe: r = a != b; break;
          case FilterOp::kLt: r = a < b; break;
          case FilterOp::kLe: r = a <= b; break;
          case FilterOp::kGt: r = a > b; break;
          case FilterOp::kGe: r = a >= b; break;
          default: assert(false && "unreachable");
        }
        stack[sp++] = r;
      }
    }
  }
  // Validator guarantees a terminal RETURN.
  assert(false && "fell off end of validated program");
  return 0;
}

}  // namespace pa
