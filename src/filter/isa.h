// Packet-filter instruction set (paper Table 2).
//
// The filter is a loop-free stack machine that runs over a message's
// headers. It is used in *both* directions (§3.3): the send filter fills in
// message-specific fields (POP_FIELD is a store!) and can reject a message
// (falling back to the full protocol stack); the delivery filter verifies
// message-specific information (checksum, length) and drops garbage.
//
// There are no jumps, so every program terminates and its exact stack needs
// can be computed statically (see FilterProgram::validate()).
#pragma once

#include <cstdint>

#include "layout/field.h"
#include "util/checksum.h"

namespace pa {

enum class FilterOp : std::uint8_t {
  kPushConst,  // push imm
  kPushField,  // push header field
  kPushSize,   // push the message's payload size in bytes
  kDigest,     // push a digest of the message payload
  kPopField,   // pop top of stack into a header field
  // Arithmetic / bitwise on the top two entries: [.., a, b] -> [.., a OP b].
  // All values are unsigned 64-bit with wraparound.
  kAdd,
  kSub,
  kMul,
  kDiv,   // division by zero makes the program fail (returns 0)
  kMod,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  // Comparisons: [.., a, b] -> [.., a CMP b ? 1 : 0] (unsigned).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kReturn,  // return imm
  kAbort,   // pop top; if non-zero, return imm
};

struct FilterInstr {
  FilterOp op;
  std::int64_t imm = 0;
  FieldHandle field{};
  DigestKind dig = DigestKind::kCrc32c;
  // DIGEST only: cover the predictable header regions (everything except
  // conn-ident and msg-spec bits, per CompiledLayout::digest_mask) in
  // addition to the payload. Protects sequence numbers and packing
  // descriptors from corruption the payload-only digest cannot see.
  bool wide = false;
};

const char* filter_op_name(FilterOp op);

/// Stack effect of an op: how many entries it pops and pushes.
struct StackEffect {
  int pops;
  int pushes;
};
StackEffect filter_op_effect(FilterOp op);

}  // namespace pa
