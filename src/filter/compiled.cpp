#include "filter/compiled.h"

#include <cassert>
#include <cstring>

#include "filter/interp.h"
#include "util/byte_order.h"

namespace pa {

CompiledFilter::RField CompiledFilter::resolve(FieldHandle h,
                                               const CompiledLayout& layout,
                                               Endian wire_endian) {
  const PlacedField& p = layout.field(h);
  RField f;
  f.region = p.region;
  f.aligned = p.aligned;
  f.bit_off = p.bit_offset;
  f.bits = p.bits;
  if (p.aligned) {
    f.byte_off = p.bit_offset / 8;
    f.bytes = static_cast<std::uint8_t>(p.bits / 8);
    f.swap = wire_endian != host_endian() && f.bytes > 1;
  }
  return f;
}

std::uint64_t CompiledFilter::load(const RField& f, const HeaderView& hdr) {
  const std::uint8_t* base = hdr.region(f.region);
  assert(base != nullptr);
  if (f.aligned) {
    std::uint64_t v = 0;
    std::memcpy(&v, base + f.byte_off, f.bytes);  // host little-endian load
    if constexpr (host_endian() == Endian::kBig) {
      v = bswap64(v) >> (64 - 8 * f.bytes);
    }
    if (f.swap) v = bswap_n(v, f.bytes);
    return v;
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < f.bits; ++i) {
    std::uint32_t pos = f.bit_off + i;
    v = (v << 1) | ((base[pos / 8] >> (7 - pos % 8)) & 1u);
  }
  return v;
}

void CompiledFilter::store(const RField& f, const HeaderView& hdr,
                           std::uint64_t v) {
  std::uint8_t* base = hdr.region(f.region);
  assert(base != nullptr);
  if (f.aligned) {
    if (f.swap) v = bswap_n(v, f.bytes);
    if constexpr (host_endian() == Endian::kBig) {
      v = bswap64(v << (64 - 8 * f.bytes));
    }
    std::memcpy(base + f.byte_off, &v, f.bytes);
    return;
  }
  for (unsigned i = 0; i < f.bits; ++i) {
    std::uint32_t pos = f.bit_off + i;
    std::uint8_t bit = (v >> (f.bits - 1 - i)) & 1u;
    std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - pos % 8));
    if (bit) {
      base[pos / 8] |= mask;
    } else {
      base[pos / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }
}

namespace {

bool is_cmp(FilterOp op) {
  switch (op) {
    case FilterOp::kEq:
    case FilterOp::kNe:
    case FilterOp::kLt:
    case FilterOp::kLe:
    case FilterOp::kGt:
    case FilterOp::kGe:
      return true;
    default:
      return false;
  }
}

bool eval_cmp(FilterOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case FilterOp::kEq: return a == b;
    case FilterOp::kNe: return a != b;
    case FilterOp::kLt: return a < b;
    case FilterOp::kLe: return a <= b;
    case FilterOp::kGt: return a > b;
    case FilterOp::kGe: return a >= b;
    default: return false;
  }
}

}  // namespace

CompiledFilter CompiledFilter::compile(const FilterProgram& program,
                                       const CompiledLayout& layout,
                                       Endian wire_endian) {
  assert(program.validated() && "compile requires a validated program");
  CompiledFilter out;
  const auto& code = program.code();
  std::size_t i = 0;
  auto at = [&](std::size_t k) -> const FilterInstr& { return code[i + k]; };
  auto remaining = [&] { return code.size() - i; };

  while (i < code.size()) {
    // ---- peephole fusion --------------------------------------------
    // PUSH_SIZE POP_FIELD                    -> StoreSize
    if (remaining() >= 2 && at(0).op == FilterOp::kPushSize &&
        at(1).op == FilterOp::kPopField) {
      CInstr c{COp::kStoreSize};
      c.field = resolve(at(1).field, layout, wire_endian);
      out.code_.push_back(c);
      ++out.fused_;
      i += 2;
      continue;
    }
    // DIGEST POP_FIELD                       -> StoreDigest
    if (remaining() >= 2 && at(0).op == FilterOp::kDigest &&
        at(1).op == FilterOp::kPopField) {
      CInstr c{COp::kStoreDigest};
      c.dig = at(0).dig;
      c.wide = at(0).wide;
      c.field = resolve(at(1).field, layout, wire_endian);
      out.code_.push_back(c);
      ++out.fused_;
      i += 2;
      continue;
    }
    // PUSH_FIELD DIGEST NE ABORT             -> CheckDigest
    if (remaining() >= 4 && at(0).op == FilterOp::kPushField &&
        at(1).op == FilterOp::kDigest && at(2).op == FilterOp::kNe &&
        at(3).op == FilterOp::kAbort) {
      CInstr c{COp::kCheckDigest};
      c.field = resolve(at(0).field, layout, wire_endian);
      c.dig = at(1).dig;
      c.wide = at(1).wide;
      c.imm = at(3).imm;
      out.code_.push_back(c);
      ++out.fused_;
      i += 4;
      continue;
    }
    // PUSH_SIZE PUSH_FIELD NE ABORT          -> CheckSizeField
    if (remaining() >= 4 && at(0).op == FilterOp::kPushSize &&
        at(1).op == FilterOp::kPushField && at(2).op == FilterOp::kNe &&
        at(3).op == FilterOp::kAbort) {
      CInstr c{COp::kCheckSizeField};
      c.field = resolve(at(1).field, layout, wire_endian);
      c.imm = at(3).imm;
      out.code_.push_back(c);
      ++out.fused_;
      i += 4;
      continue;
    }
    // PUSH_SIZE PUSH_CONST GT ABORT          -> CheckSizeMax
    if (remaining() >= 4 && at(0).op == FilterOp::kPushSize &&
        at(1).op == FilterOp::kPushConst && at(2).op == FilterOp::kGt &&
        at(3).op == FilterOp::kAbort) {
      CInstr c{COp::kCheckSizeMax};
      c.konst = static_cast<std::uint64_t>(at(1).imm);
      c.imm = at(3).imm;
      out.code_.push_back(c);
      ++out.fused_;
      i += 4;
      continue;
    }
    // PUSH_FIELD PUSH_CONST <cmp> ABORT      -> CheckFieldConst
    if (remaining() >= 4 && at(0).op == FilterOp::kPushField &&
        at(1).op == FilterOp::kPushConst && is_cmp(at(2).op) &&
        at(3).op == FilterOp::kAbort) {
      CInstr c{COp::kCheckFieldConst};
      c.field = resolve(at(0).field, layout, wire_endian);
      c.konst = static_cast<std::uint64_t>(at(1).imm);
      c.cmp = at(2).op;
      c.imm = at(3).imm;
      out.code_.push_back(c);
      ++out.fused_;
      i += 4;
      continue;
    }

    // ---- 1:1 translation with resolved fields ------------------------
    const FilterInstr& in = at(0);
    CInstr c{static_cast<COp>(0)};
    switch (in.op) {
      case FilterOp::kPushConst: c.op = COp::kPushConst; c.imm = in.imm; break;
      case FilterOp::kPushField:
        c.op = COp::kPushField;
        c.field = resolve(in.field, layout, wire_endian);
        break;
      case FilterOp::kPushSize: c.op = COp::kPushSize; break;
      case FilterOp::kDigest:
        c.op = COp::kDigest;
        c.dig = in.dig;
        c.wide = in.wide;
        break;
      case FilterOp::kPopField:
        c.op = COp::kPopField;
        c.field = resolve(in.field, layout, wire_endian);
        break;
      case FilterOp::kAdd: c.op = COp::kAdd; break;
      case FilterOp::kSub: c.op = COp::kSub; break;
      case FilterOp::kMul: c.op = COp::kMul; break;
      case FilterOp::kDiv: c.op = COp::kDiv; break;
      case FilterOp::kMod: c.op = COp::kMod; break;
      case FilterOp::kAnd: c.op = COp::kAnd; break;
      case FilterOp::kOr: c.op = COp::kOr; break;
      case FilterOp::kXor: c.op = COp::kXor; break;
      case FilterOp::kShl: c.op = COp::kShl; break;
      case FilterOp::kShr: c.op = COp::kShr; break;
      case FilterOp::kEq: c.op = COp::kEq; break;
      case FilterOp::kNe: c.op = COp::kNe; break;
      case FilterOp::kLt: c.op = COp::kLt; break;
      case FilterOp::kLe: c.op = COp::kLe; break;
      case FilterOp::kGt: c.op = COp::kGt; break;
      case FilterOp::kGe: c.op = COp::kGe; break;
      case FilterOp::kReturn: c.op = COp::kReturn; c.imm = in.imm; break;
      case FilterOp::kAbort: c.op = COp::kAbort; c.imm = in.imm; break;
    }
    out.code_.push_back(c);
    ++i;
  }
  return out;
}

std::int64_t CompiledFilter::run(const HeaderView& hdr,
                                 const Message& msg) const {
  std::uint64_t stack[64];
  std::size_t sp = 0;

  for (const CInstr& c : code_) {
    switch (c.op) {
      case COp::kStoreSize:
        store(c.field, hdr, msg.payload_len());
        break;
      case COp::kStoreDigest:
        store(c.field, hdr,
              c.wide ? wide_digest(c.dig, hdr, msg)
                     : msg.payload_digest(c.dig));
        break;
      case COp::kCheckDigest:
        if (load(c.field, hdr) != (c.wide ? wide_digest(c.dig, hdr, msg)
                                          : msg.payload_digest(c.dig))) {
          return c.imm;
        }
        break;
      case COp::kCheckSizeField:
        if (msg.payload_len() != load(c.field, hdr)) return c.imm;
        break;
      case COp::kCheckSizeMax:
        if (msg.payload_len() > c.konst) return c.imm;
        break;
      case COp::kCheckFieldConst:
        if (eval_cmp(c.cmp, load(c.field, hdr), c.konst)) return c.imm;
        break;
      case COp::kPushConst:
        stack[sp++] = static_cast<std::uint64_t>(c.imm);
        break;
      case COp::kPushField:
        stack[sp++] = load(c.field, hdr);
        break;
      case COp::kPushSize:
        stack[sp++] = msg.payload_len();
        break;
      case COp::kDigest:
        stack[sp++] = c.wide ? wide_digest(c.dig, hdr, msg)
                             : msg.payload_digest(c.dig);
        break;
      case COp::kPopField:
        store(c.field, hdr, stack[--sp]);
        break;
      case COp::kReturn:
        return c.imm;
      case COp::kAbort:
        if (stack[--sp] != 0) return c.imm;
        break;
      default: {
        std::uint64_t b = stack[--sp];
        std::uint64_t a = stack[--sp];
        std::uint64_t r = 0;
        switch (c.op) {
          case COp::kAdd: r = a + b; break;
          case COp::kSub: r = a - b; break;
          case COp::kMul: r = a * b; break;
          case COp::kDiv:
            if (b == 0) return 0;
            r = a / b;
            break;
          case COp::kMod:
            if (b == 0) return 0;
            r = a % b;
            break;
          case COp::kAnd: r = a & b; break;
          case COp::kOr: r = a | b; break;
          case COp::kXor: r = a ^ b; break;
          case COp::kShl: r = b >= 64 ? 0 : a << b; break;
          case COp::kShr: r = b >= 64 ? 0 : a >> b; break;
          case COp::kEq: r = a == b; break;
          case COp::kNe: r = a != b; break;
          case COp::kLt: r = a < b; break;
          case COp::kLe: r = a <= b; break;
          case COp::kGt: r = a > b; break;
          case COp::kGe: r = a >= b; break;
          default: assert(false && "unreachable");
        }
        stack[sp++] = r;
      }
    }
  }
  assert(false && "fell off end of compiled program");
  return 0;
}

}  // namespace pa
