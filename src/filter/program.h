// Packet-filter programs: construction and static validation.
//
// Layers build their filter fragments at stack-initialization time (paper:
// "The packet filters are constructed by the layers themselves, at
// run-time") by appending instructions; the PA seals the program with a
// final RETURN and validates it. Parts of a program may be rewritten during
// post-processing when message-specific info depends on protocol state —
// patch_const() supports that without re-validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "filter/isa.h"

namespace pa {

class FilterProgram {
 public:
  // -- builder interface (chainable) --------------------------------------
  FilterProgram& push_const(std::uint64_t v);
  FilterProgram& push_field(FieldHandle h);
  FilterProgram& push_size();
  /// `wide` extends the digest over the predictable header regions too
  /// (see FilterInstr::wide).
  FilterProgram& digest(DigestKind kind, bool wide = false);
  FilterProgram& pop_field(FieldHandle h);
  FilterProgram& op(FilterOp o);  // arithmetic / comparison ops only
  FilterProgram& ret(std::int64_t v);
  FilterProgram& abort_if(std::int64_t v);

  /// Index of the most recently appended instruction (for later patching).
  std::size_t last_index() const { return code_.size() - 1; }

  /// Rewrite the immediate of a PUSH_CONSTANT/RETURN/ABORT at `index`
  /// (run-time filter rewriting, paper §3.3). Throws on other ops.
  void patch_const(std::size_t index, std::int64_t v);

  /// Static checks: program non-empty, ends in RETURN, never underflows,
  /// field handles valid (< num_fields), DIV/MOD noted. On success fills
  /// max_stack_depth(). Throws std::runtime_error on violation.
  void validate(std::size_t num_fields);
  bool validated() const { return validated_; }
  std::size_t max_stack_depth() const { return max_depth_; }

  const std::vector<FilterInstr>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  std::string disassemble() const;

 private:
  FilterProgram& emit(FilterInstr in);

  std::vector<FilterInstr> code_;
  bool validated_ = false;
  std::size_t max_depth_ = 0;
};

}  // namespace pa
