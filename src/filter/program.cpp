#include "filter/program.h"

#include <cstdio>
#include <stdexcept>

namespace pa {

const char* filter_op_name(FilterOp op) {
  switch (op) {
    case FilterOp::kPushConst: return "PUSH_CONSTANT";
    case FilterOp::kPushField: return "PUSH_FIELD";
    case FilterOp::kPushSize: return "PUSH_SIZE";
    case FilterOp::kDigest: return "DIGEST";
    case FilterOp::kPopField: return "POP_FIELD";
    case FilterOp::kAdd: return "ADD";
    case FilterOp::kSub: return "SUB";
    case FilterOp::kMul: return "MUL";
    case FilterOp::kDiv: return "DIV";
    case FilterOp::kMod: return "MOD";
    case FilterOp::kAnd: return "AND";
    case FilterOp::kOr: return "OR";
    case FilterOp::kXor: return "XOR";
    case FilterOp::kShl: return "SHL";
    case FilterOp::kShr: return "SHR";
    case FilterOp::kEq: return "EQ";
    case FilterOp::kNe: return "NE";
    case FilterOp::kLt: return "LT";
    case FilterOp::kLe: return "LE";
    case FilterOp::kGt: return "GT";
    case FilterOp::kGe: return "GE";
    case FilterOp::kReturn: return "RETURN";
    case FilterOp::kAbort: return "ABORT";
  }
  return "?";
}

StackEffect filter_op_effect(FilterOp op) {
  switch (op) {
    case FilterOp::kPushConst:
    case FilterOp::kPushField:
    case FilterOp::kPushSize:
    case FilterOp::kDigest:
      return {0, 1};
    case FilterOp::kPopField:
    case FilterOp::kAbort:
      return {1, 0};
    case FilterOp::kReturn:
      return {0, 0};
    default:  // binary arithmetic / comparison
      return {2, 1};
  }
}

FilterProgram& FilterProgram::emit(FilterInstr in) {
  code_.push_back(in);
  validated_ = false;
  return *this;
}

FilterProgram& FilterProgram::push_const(std::uint64_t v) {
  return emit({FilterOp::kPushConst, static_cast<std::int64_t>(v), {}, {}});
}

FilterProgram& FilterProgram::push_field(FieldHandle h) {
  return emit({FilterOp::kPushField, 0, h, {}});
}

FilterProgram& FilterProgram::push_size() {
  return emit({FilterOp::kPushSize, 0, {}, {}});
}

FilterProgram& FilterProgram::digest(DigestKind kind, bool wide) {
  return emit({FilterOp::kDigest, 0, {}, kind, wide});
}

FilterProgram& FilterProgram::pop_field(FieldHandle h) {
  return emit({FilterOp::kPopField, 0, h, {}});
}

FilterProgram& FilterProgram::op(FilterOp o) {
  switch (o) {
    case FilterOp::kPushConst:
    case FilterOp::kPushField:
    case FilterOp::kPushSize:
    case FilterOp::kDigest:
    case FilterOp::kPopField:
    case FilterOp::kReturn:
    case FilterOp::kAbort:
      throw std::invalid_argument("use the dedicated builder method");
    default:
      return emit({o, 0, {}, {}});
  }
}

FilterProgram& FilterProgram::ret(std::int64_t v) {
  return emit({FilterOp::kReturn, v, {}, {}});
}

FilterProgram& FilterProgram::abort_if(std::int64_t v) {
  return emit({FilterOp::kAbort, v, {}, {}});
}

void FilterProgram::patch_const(std::size_t index, std::int64_t v) {
  FilterInstr& in = code_.at(index);
  if (in.op != FilterOp::kPushConst && in.op != FilterOp::kReturn &&
      in.op != FilterOp::kAbort) {
    throw std::invalid_argument("patch_const: not an immediate-carrying op");
  }
  in.imm = v;
}

void FilterProgram::validate(std::size_t num_fields) {
  if (code_.empty()) throw std::runtime_error("empty filter program");
  if (code_.back().op != FilterOp::kReturn) {
    throw std::runtime_error("filter program must end with RETURN");
  }
  int depth = 0;
  int max_depth = 0;
  for (const FilterInstr& in : code_) {
    if ((in.op == FilterOp::kPushField || in.op == FilterOp::kPopField) &&
        (!in.field.valid() || in.field.index >= num_fields)) {
      throw std::runtime_error("filter references invalid field handle");
    }
    StackEffect eff = filter_op_effect(in.op);
    depth -= eff.pops;
    if (depth < 0) throw std::runtime_error("filter stack underflow");
    depth += eff.pushes;
    if (depth > max_depth) max_depth = depth;
  }
  // No loops and no jumps: reaching here proves termination; `max_depth` is
  // the exact stack size needed (paper: "the necessary size for the stack
  // can be calculated").
  max_depth_ = static_cast<std::size_t>(max_depth);
  validated_ = true;
}

std::string FilterProgram::disassemble() const {
  std::string out;
  char line[96];
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const FilterInstr& in = code_[i];
    switch (in.op) {
      case FilterOp::kPushConst:
      case FilterOp::kReturn:
      case FilterOp::kAbort:
        std::snprintf(line, sizeof line, "%3zu  %-14s %lld\n", i,
                      filter_op_name(in.op),
                      static_cast<long long>(in.imm));
        break;
      case FilterOp::kPushField:
      case FilterOp::kPopField:
        std::snprintf(line, sizeof line, "%3zu  %-14s field#%u\n", i,
                      filter_op_name(in.op), in.field.index);
        break;
      case FilterOp::kDigest:
        std::snprintf(line, sizeof line, "%3zu  %-14s %s\n", i,
                      filter_op_name(in.op), digest_kind_name(in.dig));
        break;
      default:
        std::snprintf(line, sizeof line, "%3zu  %s\n", i,
                      filter_op_name(in.op));
    }
    out += line;
  }
  return out;
}

}  // namespace pa
