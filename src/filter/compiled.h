// Compiled packet filters.
//
// The paper notes (§3.3): "in the Exokernel project, a significant
// performance improvement was obtained by compiling packet filter programs
// into machine code. We intend to adopt this approach eventually." This
// backend is that adoption, in portable form: at compile() time the program
// is specialized against a fixed CompiledLayout and wire byte order —
// field handles resolve to direct (region, byte-offset, width) accessors,
// endian swaps are decided once, and common instruction sequences are fused
// into superops (store-size, store-digest, check-digest, check-size,
// bounds-check), eliminating per-instruction dispatch and lookup overhead.
//
// bench_filter measures interpreter vs. compiled throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "buf/message.h"
#include "filter/program.h"
#include "layout/view.h"

namespace pa {

class CompiledFilter {
 public:
  CompiledFilter() = default;

  /// Specialize `program` (must be validated) against a layout and wire
  /// byte order.
  static CompiledFilter compile(const FilterProgram& program,
                                const CompiledLayout& layout,
                                Endian wire_endian);

  /// Execute. `hdr` supplies the region base pointers only; all field
  /// resolution was done at compile time. Must be the same layout.
  std::int64_t run(const HeaderView& hdr, const Message& msg) const;

  bool empty() const { return code_.empty(); }
  std::size_t size() const { return code_.size(); }

  /// Number of fused superops emitted (for tests / diagnostics).
  std::size_t fused_count() const { return fused_; }

 private:
  // Resolved field accessor: no layout lookups at run time.
  struct RField {
    std::uint16_t region = 0;
    std::uint32_t byte_off = 0;   // aligned access
    std::uint8_t bytes = 0;
    bool aligned = false;
    bool swap = false;            // aligned access needs byte swap
    std::uint32_t bit_off = 0;    // generic access
    std::uint16_t bits = 0;
  };

  enum class COp : std::uint8_t {
    kPushConst,
    kPushField,
    kPushSize,
    kDigest,
    kPopField,
    kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kReturn,
    kAbort,
    // Fused superops:
    kStoreSize,        // field := payload size
    kStoreDigest,      // field := digest(payload)
    kCheckDigest,      // if field != digest(payload) return imm
    kCheckSizeField,   // if payload size != field return imm
    kCheckSizeMax,     // if payload size > const return imm
    kCheckFieldConst,  // if field CMP const return imm (CMP in cmp)
  };

  struct CInstr {
    COp op;
    std::int64_t imm = 0;
    std::uint64_t konst = 0;
    RField field{};
    DigestKind dig = DigestKind::kCrc32c;
    FilterOp cmp = FilterOp::kEq;  // for kCheckFieldConst
    bool wide = false;             // digest covers header regions too
  };

  static RField resolve(FieldHandle h, const CompiledLayout& layout,
                        Endian wire_endian);
  static std::uint64_t load(const RField& f, const HeaderView& hdr);
  static void store(const RField& f, const HeaderView& hdr, std::uint64_t v);

  std::vector<CInstr> code_;
  std::size_t fused_ = 0;
};

}  // namespace pa
