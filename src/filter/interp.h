// Packet-filter interpreter.
//
// The paper's filters are interpreted ("Packet filter programs are currently
// interpreted"); this is that baseline. See filter/compiled.h for the
// Exokernel-style compiled backend the paper says it intends to adopt.
#pragma once

#include <cstdint>

#include "buf/message.h"
#include "filter/program.h"
#include "layout/view.h"

namespace pa {

/// Run a validated program over a message's headers (via `hdr`) and payload
/// (via `msg`). Returns the program's RETURN/ABORT value. A runtime fault
/// (division by zero) returns 0 — the fail-safe value: slow path on send,
/// drop on delivery.
std::int64_t run_filter(const FilterProgram& program, HeaderView& hdr,
                        const Message& msg);

/// The wide digest (FilterInstr::wide): digest the covered header bits of
/// every bound region (per CompiledLayout::digest_mask) followed by the
/// payload. Regions with an empty mask or no bound base pointer are
/// skipped, so the same program runs whether or not the optional conn-ident
/// region is present. Used by the interpreter, the compiled backend and
/// BottomLayer's classic-path verification — all three must agree bit for
/// bit.
std::uint64_t wide_digest(DigestKind kind, const HeaderView& hdr,
                          const Message& msg);

}  // namespace pa
