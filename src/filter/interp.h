// Packet-filter interpreter.
//
// The paper's filters are interpreted ("Packet filter programs are currently
// interpreted"); this is that baseline. See filter/compiled.h for the
// Exokernel-style compiled backend the paper says it intends to adopt.
#pragma once

#include <cstdint>

#include "buf/message.h"
#include "filter/program.h"
#include "layout/view.h"

namespace pa {

/// Run a validated program over a message's headers (via `hdr`) and payload
/// (via `msg`). Returns the program's RETURN/ABORT value. A runtime fault
/// (division by zero) returns 0 — the fail-safe value: slow path on send,
/// drop on delivery.
std::int64_t run_filter(const FilterProgram& program, HeaderView& hdr,
                        const Message& msg);

}  // namespace pa
