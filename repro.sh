#!/bin/sh
# One-shot reproduction: build, test, run every paper bench, run the
# examples. Exit status is non-zero if anything (including a paper-shape
# check) fails.
set -e

cmake -B build -G Ninja
cmake --build build

echo "==== tests ===================================================="
ctest --test-dir build --output-on-failure

echo "==== tests under ASan+UBSan ==================================="
cmake -B build-san -G Ninja -DPA_SANITIZE=ON
cmake --build build-san
ctest --test-dir build-san --output-on-failure

echo "==== rt runtime tests under TSan =============================="
# Only the concurrent-runtime suites: the rest of the tree is
# single-threaded by construction and TSan triples its runtime for nothing.
cmake -B build-tsan -G Ninja -DPA_TSAN=ON
cmake --build build-tsan
# RealChaos rides along: fixed-seed fault injection against real UDP
# sockets with the deferred-delivery executor underneath — the one place
# kernel I/O and the concurrent runtime meet.
# GroupChaos rides along too: the 100-member churn test drives the
# multi-CPU hub dispatch (one engine per simulated CPU) under load.
# RealBatch rides along: the batched kernel-I/O loop (recvmmsg/sendmmsg
# trains) with a concurrent deferred sink — send trains are enqueued on the
# dispatch thread while workers deliver, so TSan watches that seam.
# StackMix rides along: the runtime-composed crypt/comp/relay stacks push
# frame codecs and deliver transforms through the same deferred machinery.
ctest --test-dir build-tsan --output-on-failure \
  -R 'SpscRing|Executor\.|DeferredRecords|RtSoak|BufConcurrency|RealChaos|GroupChaos|RealBatch|StackMix'

echo "==== clang-tidy (buffer / engine / layers / horus / health / group) ="
# Static races and perf regressions in the zero-copy data plane plus the
# composition, health and membership planes. Gated on the tool being
# present so the script still runs on lean containers.
if command -v clang-tidy >/dev/null 2>&1; then
  find src/buf src/pa src/layers src/horus src/health src/group \
      -name '*.cpp' -print \
      | while read -r f; do
    clang-tidy --quiet -p build "$f" || exit 1
  done || status_tidy=1
  [ "${status_tidy:-0}" -eq 0 ] || { echo "FAIL: clang-tidy"; exit 1; }
else
  echo "clang-tidy not installed; skipping"
fi

echo "==== paper benches ============================================"
status=0
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "---- $b"
  "$b" || status=1
done

echo "==== bench percentile keys ===================================="
# The observability layer's contract with the benches: bench_headline must
# publish closed-loop round-trip and per-phase latency percentiles in its
# JSON (docs/OBSERVABILITY.md "Benches" section).
for key in rt_p50_us rt_p99_us rt_p999_us pa_send_fast_ns_p50 \
           pa_deliver_fast_ns_p50 pa_post_send_ns_p50 \
           copies_per_send memcpy_bytes_per_send \
           zc_sweep_64B_copies_per_send zc_sweep_16384B_copies_per_send; do
  if ! grep -q "\"$key\"" BENCH_headline.json; then
    echo "FAIL: BENCH_headline.json is missing percentile key $key"
    status=1
  fi
done

echo "==== overload: shed before collapse ==========================="
# bench_overload (run above) publishes the offered-load-vs-goodput sweep.
# The governor's contract: at 2x saturation the stack still moves >= 70%
# of its peak goodput, every rejection is a counted shed_* reason
# (offered == delivered + shed at every point), and the run is crash-free.
for key in capacity_msgs_per_s goodput_retention_2x p999_admitted_us_2x; do
  if ! grep -q "\"$key\"" BENCH_overload.json; then
    echo "FAIL: BENCH_overload.json is missing key $key"
    status=1
  fi
done
for key in shed_accounted overload_governor_engaged overload_crash_free; do
  if ! grep -q "\"$key\": 1" BENCH_overload.json; then
    echo "FAIL: BENCH_overload.json: $key is not 1"
    status=1
  fi
done
retention=$(sed -n 's/.*"goodput_retention_2x": \([0-9.]*\).*/\1/p' \
            BENCH_overload.json)
if [ -z "$retention" ] || \
   ! awk "BEGIN { exit !($retention >= 0.70) }"; then
  echo "FAIL: goodput retention at 2x saturation is ${retention:-missing}" \
       "(need >= 0.70)"
  status=1
fi

echo "==== kernel batching: syscalls per message ===================="
# bench_syscall (run above) measures kernel crossings per delivered message
# with the batched real loop against the one-syscall-per-datagram baseline.
# Contract: < 0.25 syscalls per message at saturation, >= 4x fewer than the
# baseline, goodput no worse. When the sandbox has no UDP sockets the bench
# publishes sockets_available: 0 and the thresholds are vacuously green.
for key in syscalls_per_msg syscalls_per_msg_baseline reduction_x \
           msgs_per_wakeup goodput_ratio; do
  if ! grep -q "\"$key\"" BENCH_syscall.json; then
    echo "FAIL: BENCH_syscall.json is missing key $key"
    status=1
  fi
done
if ! grep -q '"syscall_batching_ok": 1' BENCH_syscall.json; then
  echo "FAIL: BENCH_syscall.json: syscall batching contract does not hold"
  status=1
fi
if grep -q '"sockets_available": 1' BENCH_syscall.json; then
  spm=$(sed -n 's/.*"syscalls_per_msg": \([0-9.]*\).*/\1/p' \
        BENCH_syscall.json)
  if [ -z "$spm" ] || ! awk "BEGIN { exit !($spm < 0.25) }"; then
    echo "FAIL: syscalls per message is ${spm:-missing} (need < 0.25)"
    status=1
  fi
fi

echo "==== group fanout: O(1) copies per mcast ======================"
# bench_fanout (run above) sweeps group size 1..1000. Its contract: byte
# copies per logical mcast stay O(1) in the group size (the in-MTU column),
# the whole stream is delivered, and per-member delivery latency at 1000
# members is published for trend tracking.
for key in fanout_copies_per_mcast_1 fanout_copies_per_mcast_1000 \
           fanout_clones_per_mcast_1000 fanout_amplification_1000 \
           member_deliver_p50_us_1000 member_deliver_p999_us_1000; do
  if ! grep -q "\"$key\"" BENCH_fanout.json; then
    echo "FAIL: BENCH_fanout.json is missing key $key"
    status=1
  fi
done
if ! grep -q '"fanout_copies_o1": 1' BENCH_fanout.json; then
  echo "FAIL: BENCH_fanout.json: copies per mcast are not O(1) in group size"
  status=1
fi
for n in 1 10 100 1000; do
  if ! grep -q "\"fanout_delivered_frac_$n\": 1\b" BENCH_fanout.json; then
    echo "FAIL: BENCH_fanout.json: incomplete delivery at $n members"
    status=1
  fi
done

for key in fanout_chaos_delivered_frac fanout_chaos_frames_lost; do
  if ! grep -q "\"$key\"" BENCH_fanout.json; then
    echo "FAIL: BENCH_fanout.json is missing key $key"
    status=1
  fi
done
if ! grep -q '"fanout_chaos_deterministic": 1' BENCH_fanout.json; then
  echo "FAIL: BENCH_fanout.json: seeded chaos phase is not deterministic"
  status=1
fi

echo "==== partition healing: detect fast, suspect rarely ==========="
# bench_partition (run above) exercises the health plane: phi-accrual
# suspicion under Gilbert-Elliott burst loss, a 60/40 set partition cut
# and healed, and the commutative view merge. All virtual-time from fixed
# seeds, so these gates are exact, not statistical.
for key in partition_false_suspect_rate partition_detect_p50_hb \
           partition_detect_p99_hb partition_reconverge_hb \
           partition_deads partition_restores; do
  if ! grep -q "\"$key\"" BENCH_partition.json; then
    echo "FAIL: BENCH_partition.json is missing key $key"
    status=1
  fi
done
if ! grep -q '"partition_merge_deterministic": 1' BENCH_partition.json; then
  echo "FAIL: BENCH_partition.json: opposite-order view merges diverged"
  status=1
fi
if ! grep -q '"partition_gate_ok": 1' BENCH_partition.json; then
  echo "FAIL: BENCH_partition.json: health-plane gates do not hold"
  status=1
fi
fsr=$(sed -n 's/.*"partition_false_suspect_rate": \([0-9.e-]*\).*/\1/p' \
      BENCH_partition.json)
if [ -z "$fsr" ] || ! awk "BEGIN { exit !($fsr < 0.01) }"; then
  echo "FAIL: false-suspect rate is ${fsr:-missing} (need < 0.01)"
  status=1
fi
p99=$(sed -n 's/.*"partition_detect_p99_hb": \([0-9.]*\).*/\1/p' \
      BENCH_partition.json)
if [ -z "$p99" ] || ! awk "BEGIN { exit !($p99 < 8.0) }"; then
  echo "FAIL: p99 detection latency is ${p99:-missing} heartbeats (need < 8)"
  status=1
fi
rec=$(sed -n 's/.*"partition_reconverge_hb": \([0-9.]*\).*/\1/p' \
      BENCH_partition.json)
if [ -z "$rec" ] || ! awk "BEGIN { exit !($rec < 10.0) }"; then
  echo "FAIL: post-heal reconvergence is ${rec:-missing} heartbeats (need < 10)"
  status=1
fi

echo "==== composed stacks: prediction masks every mix =============="
# bench_stackmix (run above) sweeps 6 runtime-composed stacks (AEAD crypt,
# LZ comp, relay hops and their combinations) x 64B-16KiB. Its contract:
# the steady-state AEAD+comp stack lives on the predicted paths (>= 90%
# deliver hit) and every composition's masked-overhead ratio (classic RT /
# PA RT, identical stack) is published per point.
for key in stackmix_aead_comp_deliver_hit stackmix_min_masked_ratio_64B \
           stackmix_base_64B_masked_ratio stackmix_crypt_64B_masked_ratio \
           stackmix_comp_1024B_masked_ratio \
           stackmix_aead_comp_1024B_masked_ratio \
           stackmix_relay_64B_masked_ratio \
           stackmix_full_16384B_masked_ratio; do
  if ! grep -q "\"$key\"" BENCH_stackmix.json; then
    echo "FAIL: BENCH_stackmix.json is missing key $key"
    status=1
  fi
done
if ! grep -q '"stackmix_gate_ok": 1' BENCH_stackmix.json; then
  echo "FAIL: BENCH_stackmix.json: composed-stack masking gates do not hold"
  status=1
fi
hit=$(sed -n 's/.*"stackmix_aead_comp_deliver_hit": \([0-9.]*\).*/\1/p' \
      BENCH_stackmix.json)
if [ -z "$hit" ] || ! awk "BEGIN { exit !($hit >= 0.90) }"; then
  echo "FAIL: AEAD+comp steady deliver hit is ${hit:-missing} (need >= 0.90)"
  status=1
fi

echo "==== examples ================================================="
for e in quickstart rpc_server file_transfer latency_tour chat_room \
         udp_pingpong secure_chat relay; do
  echo "---- $e"
  "./build/examples/$e" || status=1
done

exit $status
