#!/bin/sh
# One-shot reproduction: build, test, run every paper bench, run the
# examples. Exit status is non-zero if anything (including a paper-shape
# check) fails.
set -e

cmake -B build -G Ninja
cmake --build build

echo "==== tests ===================================================="
ctest --test-dir build --output-on-failure

echo "==== tests under ASan+UBSan ==================================="
cmake -B build-san -G Ninja -DPA_SANITIZE=ON
cmake --build build-san
ctest --test-dir build-san --output-on-failure

echo "==== rt runtime tests under TSan =============================="
# Only the concurrent-runtime suites: the rest of the tree is
# single-threaded by construction and TSan triples its runtime for nothing.
cmake -B build-tsan -G Ninja -DPA_TSAN=ON
cmake --build build-tsan
ctest --test-dir build-tsan --output-on-failure \
  -R 'SpscRing|Executor\.|DeferredRecords|RtSoak'

echo "==== paper benches ============================================"
status=0
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "---- $b"
  "$b" || status=1
done

echo "==== examples ================================================="
for e in quickstart rpc_server file_transfer latency_tour chat_room \
         udp_pingpong; do
  echo "---- $e"
  "./build/examples/$e" || status=1
done

exit $status
