#!/bin/sh
# One-shot reproduction: build, test, run every paper bench, run the
# examples. Exit status is non-zero if anything (including a paper-shape
# check) fails.
set -e

cmake -B build -G Ninja
cmake --build build

echo "==== tests ===================================================="
ctest --test-dir build --output-on-failure

echo "==== tests under ASan+UBSan ==================================="
cmake -B build-san -G Ninja -DPA_SANITIZE=ON
cmake --build build-san
ctest --test-dir build-san --output-on-failure

echo "==== rt runtime tests under TSan =============================="
# Only the concurrent-runtime suites: the rest of the tree is
# single-threaded by construction and TSan triples its runtime for nothing.
cmake -B build-tsan -G Ninja -DPA_TSAN=ON
cmake --build build-tsan
ctest --test-dir build-tsan --output-on-failure \
  -R 'SpscRing|Executor\.|DeferredRecords|RtSoak'

echo "==== paper benches ============================================"
status=0
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "---- $b"
  "$b" || status=1
done

echo "==== bench percentile keys ===================================="
# The observability layer's contract with the benches: bench_headline must
# publish closed-loop round-trip and per-phase latency percentiles in its
# JSON (docs/OBSERVABILITY.md "Benches" section).
for key in rt_p50_us rt_p99_us rt_p999_us pa_send_fast_ns_p50 \
           pa_deliver_fast_ns_p50 pa_post_send_ns_p50; do
  if ! grep -q "\"$key\"" BENCH_headline.json; then
    echo "FAIL: BENCH_headline.json is missing percentile key $key"
    status=1
  fi
done

echo "==== examples ================================================="
for e in quickstart rpc_server file_transfer latency_tour chat_room \
         udp_pingpong; do
  echo "---- $e"
  "./build/examples/$e" || status=1
done

exit $status
