# Empty compiler generated dependencies file for frame_inspector.
# This may be replaced when dependencies are built.
