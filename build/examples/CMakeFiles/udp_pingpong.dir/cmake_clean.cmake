file(REMOVE_RECURSE
  "CMakeFiles/udp_pingpong.dir/udp_pingpong.cpp.o"
  "CMakeFiles/udp_pingpong.dir/udp_pingpong.cpp.o.d"
  "udp_pingpong"
  "udp_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
