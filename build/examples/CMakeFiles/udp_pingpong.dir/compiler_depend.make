# Empty compiler generated dependencies file for udp_pingpong.
# This may be replaced when dependencies are built.
