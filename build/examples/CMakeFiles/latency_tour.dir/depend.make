# Empty dependencies file for latency_tour.
# This may be replaced when dependencies are built.
