file(REMOVE_RECURSE
  "CMakeFiles/chat_room.dir/chat_room.cpp.o"
  "CMakeFiles/chat_room.dir/chat_room.cpp.o.d"
  "chat_room"
  "chat_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
