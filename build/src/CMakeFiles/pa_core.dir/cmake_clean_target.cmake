file(REMOVE_RECURSE
  "libpa_core.a"
)
