
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buf/message.cpp" "src/CMakeFiles/pa_core.dir/buf/message.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/buf/message.cpp.o.d"
  "/root/repo/src/buf/pool.cpp" "src/CMakeFiles/pa_core.dir/buf/pool.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/buf/pool.cpp.o.d"
  "/root/repo/src/classic/engine.cpp" "src/CMakeFiles/pa_core.dir/classic/engine.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/classic/engine.cpp.o.d"
  "/root/repo/src/filter/compiled.cpp" "src/CMakeFiles/pa_core.dir/filter/compiled.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/filter/compiled.cpp.o.d"
  "/root/repo/src/filter/interp.cpp" "src/CMakeFiles/pa_core.dir/filter/interp.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/filter/interp.cpp.o.d"
  "/root/repo/src/filter/program.cpp" "src/CMakeFiles/pa_core.dir/filter/program.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/filter/program.cpp.o.d"
  "/root/repo/src/horus/endpoint.cpp" "src/CMakeFiles/pa_core.dir/horus/endpoint.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/endpoint.cpp.o.d"
  "/root/repo/src/horus/group.cpp" "src/CMakeFiles/pa_core.dir/horus/group.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/group.cpp.o.d"
  "/root/repo/src/horus/report.cpp" "src/CMakeFiles/pa_core.dir/horus/report.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/report.cpp.o.d"
  "/root/repo/src/horus/rpc.cpp" "src/CMakeFiles/pa_core.dir/horus/rpc.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/rpc.cpp.o.d"
  "/root/repo/src/horus/stack.cpp" "src/CMakeFiles/pa_core.dir/horus/stack.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/stack.cpp.o.d"
  "/root/repo/src/horus/wire_debug.cpp" "src/CMakeFiles/pa_core.dir/horus/wire_debug.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/wire_debug.cpp.o.d"
  "/root/repo/src/horus/world.cpp" "src/CMakeFiles/pa_core.dir/horus/world.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/horus/world.cpp.o.d"
  "/root/repo/src/layers/bottom_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/bottom_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/bottom_layer.cpp.o.d"
  "/root/repo/src/layers/frag_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/frag_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/frag_layer.cpp.o.d"
  "/root/repo/src/layers/heartbeat_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/heartbeat_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/heartbeat_layer.cpp.o.d"
  "/root/repo/src/layers/layer.cpp" "src/CMakeFiles/pa_core.dir/layers/layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/layer.cpp.o.d"
  "/root/repo/src/layers/meter_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/meter_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/meter_layer.cpp.o.d"
  "/root/repo/src/layers/nak_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/nak_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/nak_layer.cpp.o.d"
  "/root/repo/src/layers/pace_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/pace_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/pace_layer.cpp.o.d"
  "/root/repo/src/layers/seq_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/seq_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/seq_layer.cpp.o.d"
  "/root/repo/src/layers/window_layer.cpp" "src/CMakeFiles/pa_core.dir/layers/window_layer.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layers/window_layer.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/CMakeFiles/pa_core.dir/layout/layout.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layout/layout.cpp.o.d"
  "/root/repo/src/layout/view.cpp" "src/CMakeFiles/pa_core.dir/layout/view.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/layout/view.cpp.o.d"
  "/root/repo/src/net/real_endpoint.cpp" "src/CMakeFiles/pa_core.dir/net/real_endpoint.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/net/real_endpoint.cpp.o.d"
  "/root/repo/src/net/real_loop.cpp" "src/CMakeFiles/pa_core.dir/net/real_loop.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/net/real_loop.cpp.o.d"
  "/root/repo/src/pa/accelerator.cpp" "src/CMakeFiles/pa_core.dir/pa/accelerator.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/pa/accelerator.cpp.o.d"
  "/root/repo/src/pa/packing.cpp" "src/CMakeFiles/pa_core.dir/pa/packing.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/pa/packing.cpp.o.d"
  "/root/repo/src/pa/preamble.cpp" "src/CMakeFiles/pa_core.dir/pa/preamble.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/pa/preamble.cpp.o.d"
  "/root/repo/src/pa/router.cpp" "src/CMakeFiles/pa_core.dir/pa/router.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/pa/router.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/pa_core.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/pa_core.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/gc_model.cpp" "src/CMakeFiles/pa_core.dir/sim/gc_model.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/sim/gc_model.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/pa_core.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/pa_core.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/checksum.cpp" "src/CMakeFiles/pa_core.dir/util/checksum.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/util/checksum.cpp.o.d"
  "/root/repo/src/util/hexdump.cpp" "src/CMakeFiles/pa_core.dir/util/hexdump.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/util/hexdump.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/pa_core.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pa_core.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pa_core.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
