# Empty dependencies file for rpc_pace_test.
# This may be replaced when dependencies are built.
