file(REMOVE_RECURSE
  "CMakeFiles/rpc_pace_test.dir/rpc_pace_test.cpp.o"
  "CMakeFiles/rpc_pace_test.dir/rpc_pace_test.cpp.o.d"
  "rpc_pace_test"
  "rpc_pace_test.pdb"
  "rpc_pace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_pace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
