file(REMOVE_RECURSE
  "CMakeFiles/pa_test.dir/pa_test.cpp.o"
  "CMakeFiles/pa_test.dir/pa_test.cpp.o.d"
  "pa_test"
  "pa_test.pdb"
  "pa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
