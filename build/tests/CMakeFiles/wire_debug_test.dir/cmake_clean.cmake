file(REMOVE_RECURSE
  "CMakeFiles/wire_debug_test.dir/wire_debug_test.cpp.o"
  "CMakeFiles/wire_debug_test.dir/wire_debug_test.cpp.o.d"
  "wire_debug_test"
  "wire_debug_test.pdb"
  "wire_debug_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_debug_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
