file(REMOVE_RECURSE
  "CMakeFiles/wrap_test.dir/wrap_test.cpp.o"
  "CMakeFiles/wrap_test.dir/wrap_test.cpp.o.d"
  "wrap_test"
  "wrap_test.pdb"
  "wrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
