# Empty compiler generated dependencies file for wrap_test.
# This may be replaced when dependencies are built.
