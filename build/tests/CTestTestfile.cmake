# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/buf_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/view_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/pa_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/group_test[1]_include.cmake")
include("/root/repo/build/tests/sack_test[1]_include.cmake")
include("/root/repo/build/tests/nak_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/accelerator_test[1]_include.cmake")
include("/root/repo/build/tests/wire_debug_test[1]_include.cmake")
include("/root/repo/build/tests/wrap_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/rto_test[1]_include.cmake")
include("/root/repo/build/tests/stack_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_pace_test[1]_include.cmake")
include("/root/repo/build/tests/classic_test[1]_include.cmake")
