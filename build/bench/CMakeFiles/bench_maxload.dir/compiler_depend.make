# Empty compiler generated dependencies file for bench_maxload.
# This may be replaced when dependencies are built.
