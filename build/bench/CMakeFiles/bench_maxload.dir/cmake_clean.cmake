file(REMOVE_RECURSE
  "CMakeFiles/bench_maxload.dir/bench_maxload.cpp.o"
  "CMakeFiles/bench_maxload.dir/bench_maxload.cpp.o.d"
  "bench_maxload"
  "bench_maxload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
