file(REMOVE_RECURSE
  "CMakeFiles/bench_ethernet.dir/bench_ethernet.cpp.o"
  "CMakeFiles/bench_ethernet.dir/bench_ethernet.cpp.o.d"
  "bench_ethernet"
  "bench_ethernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ethernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
