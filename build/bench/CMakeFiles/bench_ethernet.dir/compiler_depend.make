# Empty compiler generated dependencies file for bench_ethernet.
# This may be replaced when dependencies are built.
